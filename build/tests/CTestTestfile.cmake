# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mac_test "/root/repo/build/tests/mac_test")
set_tests_properties(mac_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(agg_test "/root/repo/build/tests/agg_test")
set_tests_properties(agg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trees_test "/root/repo/build/tests/trees_test")
set_tests_properties(trees_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(diffusion_test "/root/repo/build/tests/diffusion_test")
set_tests_properties(diffusion_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(greedy_test "/root/repo/build/tests/greedy_test")
set_tests_properties(greedy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scenario_test "/root/repo/build/tests/scenario_test")
set_tests_properties(scenario_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tdma_test "/root/repo/build/tests/tdma_test")
set_tests_properties(tdma_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;wsn_test;/root/repo/tests/CMakeLists.txt;0;")
