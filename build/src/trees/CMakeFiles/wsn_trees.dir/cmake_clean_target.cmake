file(REMOVE_RECURSE
  "libwsn_trees.a"
)
