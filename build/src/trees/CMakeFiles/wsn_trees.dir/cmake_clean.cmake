file(REMOVE_RECURSE
  "CMakeFiles/wsn_trees.dir/aggregation_trees.cpp.o"
  "CMakeFiles/wsn_trees.dir/aggregation_trees.cpp.o.d"
  "CMakeFiles/wsn_trees.dir/graph.cpp.o"
  "CMakeFiles/wsn_trees.dir/graph.cpp.o.d"
  "CMakeFiles/wsn_trees.dir/models.cpp.o"
  "CMakeFiles/wsn_trees.dir/models.cpp.o.d"
  "libwsn_trees.a"
  "libwsn_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
