# Empty compiler generated dependencies file for wsn_trees.
# This may be replaced when dependencies are built.
