
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/aggregation_trees.cpp" "src/trees/CMakeFiles/wsn_trees.dir/aggregation_trees.cpp.o" "gcc" "src/trees/CMakeFiles/wsn_trees.dir/aggregation_trees.cpp.o.d"
  "/root/repo/src/trees/graph.cpp" "src/trees/CMakeFiles/wsn_trees.dir/graph.cpp.o" "gcc" "src/trees/CMakeFiles/wsn_trees.dir/graph.cpp.o.d"
  "/root/repo/src/trees/models.cpp" "src/trees/CMakeFiles/wsn_trees.dir/models.cpp.o" "gcc" "src/trees/CMakeFiles/wsn_trees.dir/models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
