file(REMOVE_RECURSE
  "CMakeFiles/wsn_net.dir/field.cpp.o"
  "CMakeFiles/wsn_net.dir/field.cpp.o.d"
  "CMakeFiles/wsn_net.dir/topology.cpp.o"
  "CMakeFiles/wsn_net.dir/topology.cpp.o.d"
  "libwsn_net.a"
  "libwsn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
