file(REMOVE_RECURSE
  "libwsn_net.a"
)
