file(REMOVE_RECURSE
  "CMakeFiles/wsn_sim.dir/event_queue.cpp.o"
  "CMakeFiles/wsn_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/wsn_sim.dir/logger.cpp.o"
  "CMakeFiles/wsn_sim.dir/logger.cpp.o.d"
  "CMakeFiles/wsn_sim.dir/random.cpp.o"
  "CMakeFiles/wsn_sim.dir/random.cpp.o.d"
  "CMakeFiles/wsn_sim.dir/simulator.cpp.o"
  "CMakeFiles/wsn_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/wsn_sim.dir/time.cpp.o"
  "CMakeFiles/wsn_sim.dir/time.cpp.o.d"
  "libwsn_sim.a"
  "libwsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
