# Empty compiler generated dependencies file for wsn_stats.
# This may be replaced when dependencies are built.
