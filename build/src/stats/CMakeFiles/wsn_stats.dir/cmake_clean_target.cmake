file(REMOVE_RECURSE
  "libwsn_stats.a"
)
