file(REMOVE_RECURSE
  "CMakeFiles/wsn_stats.dir/metrics.cpp.o"
  "CMakeFiles/wsn_stats.dir/metrics.cpp.o.d"
  "libwsn_stats.a"
  "libwsn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
