
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/channel.cpp" "src/mac/CMakeFiles/wsn_mac.dir/channel.cpp.o" "gcc" "src/mac/CMakeFiles/wsn_mac.dir/channel.cpp.o.d"
  "/root/repo/src/mac/csma_mac.cpp" "src/mac/CMakeFiles/wsn_mac.dir/csma_mac.cpp.o" "gcc" "src/mac/CMakeFiles/wsn_mac.dir/csma_mac.cpp.o.d"
  "/root/repo/src/mac/tdma_mac.cpp" "src/mac/CMakeFiles/wsn_mac.dir/tdma_mac.cpp.o" "gcc" "src/mac/CMakeFiles/wsn_mac.dir/tdma_mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
