file(REMOVE_RECURSE
  "CMakeFiles/wsn_scenario.dir/experiment.cpp.o"
  "CMakeFiles/wsn_scenario.dir/experiment.cpp.o.d"
  "CMakeFiles/wsn_scenario.dir/sweep.cpp.o"
  "CMakeFiles/wsn_scenario.dir/sweep.cpp.o.d"
  "libwsn_scenario.a"
  "libwsn_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
