file(REMOVE_RECURSE
  "libwsn_scenario.a"
)
