# Empty dependencies file for wsn_scenario.
# This may be replaced when dependencies are built.
