# Empty dependencies file for wsn_diffusion.
# This may be replaced when dependencies are built.
