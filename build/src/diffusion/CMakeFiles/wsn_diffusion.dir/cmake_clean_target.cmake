file(REMOVE_RECURSE
  "libwsn_diffusion.a"
)
