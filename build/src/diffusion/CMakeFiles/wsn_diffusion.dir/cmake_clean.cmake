file(REMOVE_RECURSE
  "CMakeFiles/wsn_diffusion.dir/node.cpp.o"
  "CMakeFiles/wsn_diffusion.dir/node.cpp.o.d"
  "libwsn_diffusion.a"
  "libwsn_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
