# Empty compiler generated dependencies file for wsn_agg.
# This may be replaced when dependencies are built.
