file(REMOVE_RECURSE
  "CMakeFiles/wsn_agg.dir/set_cover.cpp.o"
  "CMakeFiles/wsn_agg.dir/set_cover.cpp.o.d"
  "libwsn_agg.a"
  "libwsn_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
