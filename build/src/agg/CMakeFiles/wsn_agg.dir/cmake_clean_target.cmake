file(REMOVE_RECURSE
  "libwsn_agg.a"
)
