file(REMOVE_RECURSE
  "CMakeFiles/wsn_core.dir/algorithm.cpp.o"
  "CMakeFiles/wsn_core.dir/algorithm.cpp.o.d"
  "CMakeFiles/wsn_core.dir/greedy_node.cpp.o"
  "CMakeFiles/wsn_core.dir/greedy_node.cpp.o.d"
  "libwsn_core.a"
  "libwsn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
