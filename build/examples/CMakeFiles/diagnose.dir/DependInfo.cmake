
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/diagnose.cpp" "examples/CMakeFiles/diagnose.dir/diagnose.cpp.o" "gcc" "examples/CMakeFiles/diagnose.dir/diagnose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/wsn_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wsn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/wsn_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/wsn_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/wsn_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wsn_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
