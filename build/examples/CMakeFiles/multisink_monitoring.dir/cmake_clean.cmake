file(REMOVE_RECURSE
  "CMakeFiles/multisink_monitoring.dir/multisink_monitoring.cpp.o"
  "CMakeFiles/multisink_monitoring.dir/multisink_monitoring.cpp.o.d"
  "multisink_monitoring"
  "multisink_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisink_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
