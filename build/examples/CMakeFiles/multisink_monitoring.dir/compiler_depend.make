# Empty compiler generated dependencies file for multisink_monitoring.
# This may be replaced when dependencies are built.
