# Empty dependencies file for energy_scan.
# This may be replaced when dependencies are built.
