file(REMOVE_RECURSE
  "CMakeFiles/energy_scan.dir/energy_scan.cpp.o"
  "CMakeFiles/energy_scan.dir/energy_scan.cpp.o.d"
  "energy_scan"
  "energy_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
