# Empty compiler generated dependencies file for wsnctl.
# This may be replaced when dependencies are built.
