file(REMOVE_RECURSE
  "CMakeFiles/wsnctl.dir/wsnctl.cpp.o"
  "CMakeFiles/wsnctl.dir/wsnctl.cpp.o.d"
  "wsnctl"
  "wsnctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
