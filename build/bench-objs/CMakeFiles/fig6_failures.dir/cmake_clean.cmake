file(REMOVE_RECURSE
  "../bench/fig6_failures"
  "../bench/fig6_failures.pdb"
  "CMakeFiles/fig6_failures.dir/fig6_failures.cpp.o"
  "CMakeFiles/fig6_failures.dir/fig6_failures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
