# Empty dependencies file for fig6_failures.
# This may be replaced when dependencies are built.
