# Empty compiler generated dependencies file for ablation_mac.
# This may be replaced when dependencies are built.
