file(REMOVE_RECURSE
  "../bench/ablation_mac"
  "../bench/ablation_mac.pdb"
  "CMakeFiles/ablation_mac.dir/ablation_mac.cpp.o"
  "CMakeFiles/ablation_mac.dir/ablation_mac.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
