file(REMOVE_RECURSE
  "../bench/fig8_sinks"
  "../bench/fig8_sinks.pdb"
  "CMakeFiles/fig8_sinks.dir/fig8_sinks.cpp.o"
  "CMakeFiles/fig8_sinks.dir/fig8_sinks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
