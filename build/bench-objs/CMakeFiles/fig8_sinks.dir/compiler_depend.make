# Empty compiler generated dependencies file for fig8_sinks.
# This may be replaced when dependencies are built.
