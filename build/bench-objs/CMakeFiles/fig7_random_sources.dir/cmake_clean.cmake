file(REMOVE_RECURSE
  "../bench/fig7_random_sources"
  "../bench/fig7_random_sources.pdb"
  "CMakeFiles/fig7_random_sources.dir/fig7_random_sources.cpp.o"
  "CMakeFiles/fig7_random_sources.dir/fig7_random_sources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_random_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
