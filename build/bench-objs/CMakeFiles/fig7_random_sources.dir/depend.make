# Empty dependencies file for fig7_random_sources.
# This may be replaced when dependencies are built.
