# Empty compiler generated dependencies file for ablation_directional.
# This may be replaced when dependencies are built.
