file(REMOVE_RECURSE
  "../bench/ablation_directional"
  "../bench/ablation_directional.pdb"
  "CMakeFiles/ablation_directional.dir/ablation_directional.cpp.o"
  "CMakeFiles/ablation_directional.dir/ablation_directional.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_directional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
