file(REMOVE_RECURSE
  "../bench/ablation_truncation"
  "../bench/ablation_truncation.pdb"
  "CMakeFiles/ablation_truncation.dir/ablation_truncation.cpp.o"
  "CMakeFiles/ablation_truncation.dir/ablation_truncation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
