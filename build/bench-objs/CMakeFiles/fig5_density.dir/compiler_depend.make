# Empty compiler generated dependencies file for fig5_density.
# This may be replaced when dependencies are built.
