file(REMOVE_RECURSE
  "../bench/fig5_density"
  "../bench/fig5_density.pdb"
  "CMakeFiles/fig5_density.dir/fig5_density.cpp.o"
  "CMakeFiles/fig5_density.dir/fig5_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
