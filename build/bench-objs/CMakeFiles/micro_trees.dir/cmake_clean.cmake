file(REMOVE_RECURSE
  "../bench/micro_trees"
  "../bench/micro_trees.pdb"
  "CMakeFiles/micro_trees.dir/micro_trees.cpp.o"
  "CMakeFiles/micro_trees.dir/micro_trees.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
