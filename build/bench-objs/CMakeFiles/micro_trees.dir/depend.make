# Empty dependencies file for micro_trees.
# This may be replaced when dependencies are built.
