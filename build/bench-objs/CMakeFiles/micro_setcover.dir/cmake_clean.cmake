file(REMOVE_RECURSE
  "../bench/micro_setcover"
  "../bench/micro_setcover.pdb"
  "CMakeFiles/micro_setcover.dir/micro_setcover.cpp.o"
  "CMakeFiles/micro_setcover.dir/micro_setcover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_setcover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
