# Empty dependencies file for micro_setcover.
# This may be replaced when dependencies are built.
