file(REMOVE_RECURSE
  "../bench/ablation_tp"
  "../bench/ablation_tp.pdb"
  "CMakeFiles/ablation_tp.dir/ablation_tp.cpp.o"
  "CMakeFiles/ablation_tp.dir/ablation_tp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
