# Empty compiler generated dependencies file for ablation_tp.
# This may be replaced when dependencies are built.
