file(REMOVE_RECURSE
  "../bench/fig10_linear"
  "../bench/fig10_linear.pdb"
  "CMakeFiles/fig10_linear.dir/fig10_linear.cpp.o"
  "CMakeFiles/fig10_linear.dir/fig10_linear.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
