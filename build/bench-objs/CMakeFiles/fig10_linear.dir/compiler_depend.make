# Empty compiler generated dependencies file for fig10_linear.
# This may be replaced when dependencies are built.
