# Empty compiler generated dependencies file for fig9_sources.
# This may be replaced when dependencies are built.
