file(REMOVE_RECURSE
  "../bench/fig9_sources"
  "../bench/fig9_sources.pdb"
  "CMakeFiles/fig9_sources.dir/fig9_sources.cpp.o"
  "CMakeFiles/fig9_sources.dir/fig9_sources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
