file(REMOVE_RECURSE
  "../bench/git_vs_spt"
  "../bench/git_vs_spt.pdb"
  "CMakeFiles/git_vs_spt.dir/git_vs_spt.cpp.o"
  "CMakeFiles/git_vs_spt.dir/git_vs_spt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/git_vs_spt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
