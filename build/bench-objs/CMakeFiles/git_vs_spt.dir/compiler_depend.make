# Empty compiler generated dependencies file for git_vs_spt.
# This may be replaced when dependencies are built.
