# Empty dependencies file for ablation_ta.
# This may be replaced when dependencies are built.
