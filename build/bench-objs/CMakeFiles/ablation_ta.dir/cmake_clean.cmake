file(REMOVE_RECURSE
  "../bench/ablation_ta"
  "../bench/ablation_ta.pdb"
  "CMakeFiles/ablation_ta.dir/ablation_ta.cpp.o"
  "CMakeFiles/ablation_ta.dir/ablation_ta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
