file(REMOVE_RECURSE
  "../bench/lifetime_hotspot"
  "../bench/lifetime_hotspot.pdb"
  "CMakeFiles/lifetime_hotspot.dir/lifetime_hotspot.cpp.o"
  "CMakeFiles/lifetime_hotspot.dir/lifetime_hotspot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
