# Empty compiler generated dependencies file for lifetime_hotspot.
# This may be replaced when dependencies are built.
