#!/usr/bin/env python3
"""Project-convention lint for the WSN simulator.

Rules (beyond what clang-tidy covers):

  R1  rng-source      No rand()/srand()/std::mt19937/<random> engines outside
                      src/sim/random.* — every random draw must come from the
                      seeded, platform-stable wsn::sim::Rng.
  R2  wall-clock      No wall-clock reads in simulation code (src/): time(),
                      std::chrono::*_clock, gettimeofday, clock_gettime,
                      localtime, gmtime. Simulated time comes from
                      Simulator::now(); wall-clock reads break determinism.
  R3  unordered-iter  No range-for over std::unordered_{map,set} variables in
                      src/ unless the loop is annotated with
                      `lint:unordered-ok` on the loop line or the line above.
                      Hash iteration order feeding protocol decisions is the
                      classic source of cross-platform nondeterminism.
  R4  header-shape    Every .hpp starts with a `//` purpose comment on line 1
                      and its first non-comment, non-blank line is
                      `#pragma once`.
  R5  hot-path-heap   No bare std::make_shared of protocol messages or MAC
                      transmissions in src/ — message-shaped objects recycle
                      through the simulator's pool (sim.arena().make<T>());
                      a bare make_shared silently reintroduces per-send heap
                      traffic. Setup-time or test-rig sites may annotate
                      with `lint:pool-ok` on the line or the line above.
  R6  trace-emit      Trace emission in src/ (outside src/trace/) must go
                      through WSN_TRACE_EMIT — no direct Tracer::emit calls
                      or tracer() reads. The macro carries the traced-off
                      guard; a bare emit runs its operands even when tracing
                      is disabled. Deliberate sites (the accessor itself,
                      batch guards around per-item loops) annotate with
                      `lint:trace-ok` on the line or the line above.

Exit status 0 when clean; 1 with one `path:line: [rule] message` per finding.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "tests", "bench", "examples"]
CPP_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

ALLOW_MARK = "lint:unordered-ok"
POOL_MARK = "lint:pool-ok"
TRACE_MARK = "lint:trace-ok"

RNG_PATTERN = re.compile(
    r"\b(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|ranlux\d+(?:_base)?|"
    r"default_random_engine|random_device)\b|\bs?rand\s*\(")
WALL_CLOCK_PATTERN = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b|"
    r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\blocaltime\s*\(|"
    r"\bgmtime\s*\(|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
UNORDERED_DECL_PATTERN = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_PATTERN = re.compile(r"\bfor\s*\(([^;]*?):([^)]*)\)")
POOL_BYPASS_PATTERN = re.compile(
    r"\bstd::make_shared\s*<\s*[\w:]*?(?:Msg|Transmission)\s*>")
TRACE_SINK_PATTERN = re.compile(
    r"\btracer\s*\(\s*\)|(?:->|\.)\s*emit\s*\(")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (keeps quotes)."""
    out: list[str] = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def declared_unordered_names(code_lines: list[str]) -> set[str]:
    """Names of variables/members declared as std::unordered_* containers."""
    names: set[str] = set()
    # Declarations can span lines (long template args); scan a joined window.
    joined = " ".join(code_lines)
    for m in UNORDERED_DECL_PATTERN.finditer(joined):
        # Walk past the balanced template argument list, then read the name.
        i = m.end()
        depth = 1
        while i < len(joined) and depth > 0:
            if joined[i] == "<":
                depth += 1
            elif joined[i] == ">":
                depth -= 1
            i += 1
        rest = joined[i:]
        name = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|,|\))", rest)
        if name:
            names.add(name.group(1))
    return names


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, path: Path, line_no: int, rule: str, msg: str) -> None:
        rel = path.relative_to(REPO)
        self.findings.append(f"{rel}:{line_no}: [{rule}] {msg}")

    def lint_file(self, path: Path, unordered_names: set[str]) -> None:
        rel = path.relative_to(REPO).as_posix()
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        code = [strip_comments_and_strings(l) for l in lines]

        in_sim = rel.startswith("src/")
        rng_exempt = rel.startswith("src/sim/random.")
        trace_exempt = rel.startswith("src/trace/")

        for idx, (raw, clean) in enumerate(zip(lines, code), start=1):
            if not rng_exempt and RNG_PATTERN.search(clean):
                self.report(path, idx, "rng-source",
                            "use wsn::sim::Rng (src/sim/random) instead of "
                            "ad-hoc std RNGs / rand()")
            if in_sim and POOL_BYPASS_PATTERN.search(clean):
                here = raw
                above = lines[idx - 2] if idx >= 2 else ""
                if POOL_MARK not in here and POOL_MARK not in above:
                    self.report(path, idx, "hot-path-heap",
                                "bare std::make_shared of a pooled type; use "
                                f"sim.arena().make<T>() or annotate with "
                                f"{POOL_MARK} for setup-time sites")
            if in_sim and not trace_exempt and TRACE_SINK_PATTERN.search(clean):
                here = raw
                above = lines[idx - 2] if idx >= 2 else ""
                if TRACE_MARK not in here and TRACE_MARK not in above:
                    self.report(path, idx, "trace-emit",
                                "direct tracer sink access; use WSN_TRACE_EMIT "
                                "(it carries the traced-off guard) or annotate "
                                f"with {TRACE_MARK}")
            if in_sim and WALL_CLOCK_PATTERN.search(clean):
                self.report(path, idx, "wall-clock",
                            "wall-clock read in sim code; use "
                            "Simulator::now() for simulated time")
            if in_sim:
                for m in RANGE_FOR_PATTERN.finditer(clean):
                    target = m.group(2).strip()
                    base = re.sub(r"[()*&\s]", "", target)
                    base = base.split(".")[-1].split("->")[-1]
                    if base in unordered_names:
                        here = raw
                        above = lines[idx - 2] if idx >= 2 else ""
                        if ALLOW_MARK not in here and ALLOW_MARK not in above:
                            self.report(
                                path, idx, "unordered-iter",
                                f"range-for over unordered container "
                                f"'{base}'; sort/drain first or annotate "
                                f"with {ALLOW_MARK} if order-insensitive")

        if path.suffix in {".hpp", ".h"}:
            if not lines or not lines[0].lstrip().startswith("//"):
                self.report(path, 1, "header-shape",
                            "header must open with a `//` purpose comment")
            first_code = next(
                (l.strip() for l in lines
                 if l.strip() and not l.lstrip().startswith("//")), "")
            if first_code != "#pragma once":
                self.report(path, 1, "header-shape",
                            "#pragma once must be the first non-comment line")

    def run(self) -> int:
        files: list[Path] = []
        for d in SOURCE_DIRS:
            root = REPO / d
            if root.is_dir():
                files.extend(p for p in sorted(root.rglob("*"))
                             if p.suffix in CPP_SUFFIXES)

        # R3 needs declarations visible across a header/impl pair: a member
        # declared in foo.hpp is iterated in foo.cpp.
        decls: dict[Path, set[str]] = {}
        for p in files:
            decls[p] = declared_unordered_names(
                [strip_comments_and_strings(l)
                 for l in p.read_text(encoding="utf-8").splitlines()])

        for p in files:
            names = set(decls[p])
            for sib_suffix in (".hpp", ".h", ".cpp", ".cc"):
                sib = p.with_suffix(sib_suffix)
                if sib != p and sib in decls:
                    names |= decls[sib]
            self.lint_file(p, names)

        for f in self.findings:
            print(f)
        if self.findings:
            print(f"lint: {len(self.findings)} finding(s) in "
                  f"{len(files)} files", file=sys.stderr)
            return 1
        print(f"lint: OK ({len(files)} files)")
        return 0


if __name__ == "__main__":
    sys.exit(Linter().run())
