// CLI over src/trace binary traces: summary | path <item-key> | diff.
//
//   trace_tool summary FILE         per-kind/per-component/per-node counters
//   trace_tool path FILE SRC:SEQ    hop-by-hop reconstruction of one data
//                                   item from generation to each delivery
//                                   (SRC:SEQ, or the packed 64-bit key)
//   trace_tool diff A B             byte-exact comparison of two same-seed
//                                   traces; prints the first divergent
//                                   record and exits 1 on divergence
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "trace/reader.hpp"
#include "trace/trace.hpp"

namespace {

using wsn::trace::Record;
using wsn::trace::RecordKind;
using wsn::trace::TraceReader;

int usage() {
  std::fprintf(stderr,
               "usage: trace_tool summary FILE\n"
               "       trace_tool path FILE <source:seq | packed-key>\n"
               "       trace_tool diff FILE_A FILE_B\n");
  return 2;
}

void print_record(const char* prefix, const Record& r) {
  std::printf("%st=%.9fs %-26s node=%" PRIu32 " peer=%" PRIu32 " a=%" PRIu64
              " b=%" PRIu64 "\n",
              prefix, static_cast<double>(r.t_ns) * 1e-9,
              wsn::trace::kind_name(r.kind), r.node, r.peer, r.a, r.b);
}

int cmd_summary(const std::string& path) {
  TraceReader reader{path};
  if (!reader.ok()) {
    std::fprintf(stderr, "trace_tool: %s\n", reader.error().c_str());
    return 2;
  }
  wsn::trace::CounterTable counters;
  std::map<std::string, std::uint64_t> per_component;
  std::map<std::uint32_t, std::uint64_t> per_node;
  std::int64_t t_first = 0;
  std::int64_t t_last = 0;
  Record r;
  while (reader.next(r)) {
    if (reader.records_read() == 1) t_first = r.t_ns;
    t_last = r.t_ns;
    ++counters.counts[static_cast<std::size_t>(r.kind)];
    ++per_component[wsn::trace::kind_component(r.kind)];
    ++per_node[r.node];
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "trace_tool: %s\n", reader.error().c_str());
    return 2;
  }

  std::printf("trace    %s\n", path.c_str());
  std::printf("header   seed=%" PRIu64 "  config-digest=%016" PRIx64 "\n",
              reader.header().seed, reader.header().config_digest);
  std::printf("records  %" PRIu64 "  span %.6fs .. %.6fs  nodes %zu\n\n",
              reader.records_read(), static_cast<double>(t_first) * 1e-9,
              static_cast<double>(t_last) * 1e-9, per_node.size());

  std::printf("%-28s %12s\n", "kind", "records");
  for (std::size_t k = 0; k < wsn::trace::kRecordKindCount; ++k) {
    if (counters.counts[k] == 0) continue;
    std::printf("%-28s %12" PRIu64 "\n",
                wsn::trace::kind_name(static_cast<RecordKind>(k)),
                counters.counts[k]);
  }
  std::printf("\n%-28s %12s\n", "component", "records");
  for (const auto& [component, n] : per_component) {
    std::printf("%-28s %12" PRIu64 "\n", component.c_str(), n);
  }

  // Busiest nodes: the usual first question a summary answers is "where is
  // the traffic concentrating".
  std::vector<std::pair<std::uint64_t, std::uint32_t>> busiest;
  busiest.reserve(per_node.size());
  for (const auto& [node, n] : per_node) busiest.emplace_back(n, node);
  std::sort(busiest.rbegin(), busiest.rend());
  const std::size_t top = std::min<std::size_t>(busiest.size(), 10);
  std::printf("\n%-28s %12s\n", "busiest nodes", "records");
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("node %-23" PRIu32 " %12" PRIu64 "\n", busiest[i].second,
                busiest[i].first);
  }
  return 0;
}

bool parse_item_key(const char* arg, std::uint64_t& key) {
  const char* colon = std::strchr(arg, ':');
  char* end = nullptr;
  if (colon != nullptr) {
    const unsigned long long src = std::strtoull(arg, &end, 10);
    if (end != colon) return false;
    const unsigned long long seq = std::strtoull(colon + 1, &end, 10);
    if (*end != '\0' || src > 0xffffffffULL || seq > 0xffffffffULL) {
      return false;
    }
    key = (src << 32) | seq;
    return true;
  }
  key = std::strtoull(arg, &end, 10);
  return end != arg && *end == '\0';
}

int cmd_path(const std::string& path, const char* key_arg) {
  std::uint64_t key = 0;
  if (!parse_item_key(key_arg, key)) {
    std::fprintf(stderr, "trace_tool: bad item key \"%s\" (want SRC:SEQ)\n",
                 key_arg);
    return 2;
  }
  TraceReader reader{path};
  if (!reader.ok()) {
    std::fprintf(stderr, "trace_tool: %s\n", reader.error().c_str());
    return 2;
  }
  std::printf("item %" PRIu32 ":%" PRIu32 " (key %" PRIu64 ")\n",
              static_cast<std::uint32_t>(key >> 32),
              static_cast<std::uint32_t>(key & 0xffffffffULL), key);
  std::uint64_t hits = 0;
  Record r;
  while (reader.next(r)) {
    if (r.a != key) continue;
    const double t = static_cast<double>(r.t_ns) * 1e-9;
    switch (r.kind) {
      case RecordKind::kItemGenerated:
        ++hits;
        std::printf("  t=%.6fs generated at node %" PRIu32 "\n", t, r.node);
        break;
      case RecordKind::kItemForward:
        ++hits;
        std::printf("  t=%.6fs %" PRIu32 " -> %" PRIu32 " (msg %" PRIu64
                    ")\n",
                    t, r.node, r.peer, r.b);
        break;
      case RecordKind::kItemDelivered:
        ++hits;
        std::printf("  t=%.6fs delivered at sink %" PRIu32 " (delay %.6fs)\n",
                    t, r.node, static_cast<double>(r.b) * 1e-9);
        break;
      default:
        break;  // same `a` value in an unrelated kind (e.g. a msg id)
    }
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "trace_tool: %s\n", reader.error().c_str());
    return 2;
  }
  if (hits == 0) {
    std::printf("  (no records for this item)\n");
    return 1;
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const wsn::trace::TraceDiff diff = wsn::trace::diff_traces(path_a, path_b);
  if (!diff.comparable) {
    std::fprintf(stderr, "trace_tool: %s\n", diff.error.c_str());
    return 2;
  }
  if (diff.identical) {
    std::printf("traces identical\n");
    return 0;
  }
  if (diff.header_differs) {
    std::printf("headers differ (seed or config digest): the traces are not "
                "from same-seed runs of the same configuration\n");
  }
  if (diff.has_a || diff.has_b) {
    std::printf("first divergent record: index %" PRIu64 "\n",
                diff.first_diff_index);
    if (diff.has_a) print_record("  A: ", diff.a);
    else            std::printf("  A: <end of trace>\n");
    if (diff.has_b) print_record("  B: ", diff.b);
    else            std::printf("  B: <end of trace>\n");
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "summary" && argc == 3) return cmd_summary(argv[2]);
  if (cmd == "path" && argc == 4) return cmd_path(argv[2], argv[3]);
  if (cmd == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
  return usage();
}
