#!/usr/bin/env python3
"""Diff two BENCH_*.json files written by bench/bench_common.hpp.

Points are matched by (label, series); every shared metric is reported as
a baseline → candidate pair with its relative delta. Metrics in these
files are throughput-style (higher is better) unless named in
--lower-better, so a *drop* beyond the tolerance counts as a regression.

Usage:
  tools/bench_diff.py BASELINE.json CANDIDATE.json [--check]
      [--tolerance 0.15] [--lower-better energy,delay]

Exit status: 0 normally; with --check, 1 when any metric regresses by
more than the tolerance (or a point/metric present in the baseline
disappeared). Malformed input always exits 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_points(path: Path) -> tuple[dict, dict[tuple[str, str], dict]]:
    """Returns (header, {(label, series): {metric: mean}})."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(doc, dict) or "points" not in doc:
        sys.exit(f"bench_diff: {path}: not a bench JSON (no 'points')")
    points: dict[tuple[str, str], dict[str, float]] = {}
    for p in doc["points"]:
        key = (str(p.get("label")), str(p.get("series")))
        metrics = {}
        for name, stats in p.get("metrics", {}).items():
            mean = stats.get("mean") if isinstance(stats, dict) else None
            if isinstance(mean, (int, float)):
                metrics[name] = float(mean)
        points[key] = metrics
    return doc, points


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Compare two bench JSON files, flagging regressions.")
    ap.add_argument("baseline", type=Path)
    ap.add_argument("candidate", type=Path)
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on any regression beyond the tolerance")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="relative regression threshold (default 0.15)")
    ap.add_argument("--lower-better", default="",
                    help="comma-separated metric names where lower is "
                         "better (e.g. energy,delay)")
    args = ap.parse_args()

    lower_better = {m for m in args.lower_better.split(",") if m}
    base_doc, base = load_points(args.baseline)
    cand_doc, cand = load_points(args.candidate)

    if base_doc.get("figure") != cand_doc.get("figure"):
        print(f"note: comparing different figures: "
              f"{base_doc.get('figure')} vs {cand_doc.get('figure')}")

    regressions: list[str] = []
    print(f"{'point':<22} {'metric':<18} {'baseline':>12} {'candidate':>12} "
          f"{'delta':>8}")
    for key in sorted(base):
        label = f"{key[0]}/{key[1]}"
        if key not in cand:
            print(f"{label:<22} {'-':<18} {'present':>12} {'MISSING':>12}")
            regressions.append(f"{label}: point missing from candidate")
            continue
        for name, old in sorted(base[key].items()):
            if name not in cand[key]:
                print(f"{label:<22} {name:<18} {old:>12.4g} {'MISSING':>12}")
                regressions.append(f"{label}.{name}: metric missing")
                continue
            new = cand[key][name]
            if old != 0:
                delta = (new - old) / old
            else:
                # A zero baseline can't scale: unchanged is 0%, any rise
                # is unbounded (flagged only for lower-better metrics).
                delta = 0.0 if new == 0 else float("inf")
            worse = -delta if name in lower_better else delta
            flag = ""
            if worse < -args.tolerance:
                flag = "  REGRESSION"
                regressions.append(
                    f"{label}.{name}: {old:.4g} -> {new:.4g} ({delta:+.1%})")
            print(f"{label:<22} {name:<18} {old:>12.4g} {new:>12.4g} "
                  f"{delta:>+8.1%}{flag}")
    for key in sorted(set(cand) - set(base)):
        print(f"{key[0]}/{key[1]:<15} (new point, no baseline)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%}:")
        for r in regressions:
            print(f"  {r}")
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
