// Tests for the WSN_AUDIT invariant layer. Compiles in both build modes:
// audit builds prove checks run and catch violations; plain builds prove
// the macros cost nothing.
#include <gtest/gtest.h>

#include "mac/energy.hpp"
#include "mac/params.hpp"
#include "sim/audit.hpp"
#include "sim/event_queue.hpp"

namespace wsn {
namespace {

using sim::EventQueue;
using sim::Time;

#if WSN_AUDIT_ENABLED

TEST(Audit, ChecksRunDuringEventQueuePops) {
  const std::uint64_t before = sim::audit::checks_performed();
  EventQueue q;
  q.schedule(Time::millis(1), [] {});
  q.schedule(Time::millis(2), [] {});
  while (!q.empty()) q.pop().fn();
  EXPECT_GT(sim::audit::checks_performed(), before);
}

TEST(Audit, CancellationEdgesRaiseNoViolations) {
  sim::audit::set_abort_on_violation(false);
  sim::audit::reset_violations();
  EventQueue q;
  auto h = q.schedule(Time::millis(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(h));              // cancel-after-fire
  auto h2 = q.schedule(Time::millis(2), [] {});
  EXPECT_TRUE(q.cancel(h2));
  EXPECT_FALSE(q.cancel(h2));             // double-cancel
  EXPECT_FALSE(q.pending(sim::EventHandle{}));  // default handle
  EXPECT_EQ(sim::audit::violations(), 0u);
  sim::audit::set_abort_on_violation(true);
}

TEST(Audit, EnergyTimeReversalIsCaught) {
  sim::audit::set_abort_on_violation(false);
  sim::audit::reset_violations();
  mac::EnergyMeter meter{mac::EnergyParams{}};
  meter.accumulate_to(Time::seconds(2.0));
  meter.accumulate_to(Time::seconds(1.0));  // time moved backwards
  EXPECT_GE(sim::audit::violations(), 1u);
  sim::audit::reset_violations();
  sim::audit::set_abort_on_violation(true);
}

TEST(Audit, MonotoneEnergyAccumulationIsClean) {
  sim::audit::set_abort_on_violation(false);
  sim::audit::reset_violations();
  mac::EnergyMeter meter{mac::EnergyParams{}};
  meter.set_state(Time::zero(), mac::RadioState::kTx);
  meter.accumulate_to(Time::seconds(1.0));
  meter.set_state(Time::seconds(1.5), mac::RadioState::kIdle);
  meter.accumulate_to(Time::seconds(3.0));
  EXPECT_EQ(sim::audit::violations(), 0u);
  EXPECT_GE(meter.joules(), meter.active_joules());
  sim::audit::set_abort_on_violation(true);
}

#else  // !WSN_AUDIT_ENABLED

TEST(Audit, DisabledBuildPerformsNoChecks) {
  EventQueue q;
  q.schedule(Time::millis(1), [] {});
  q.pop().fn();
  mac::EnergyMeter meter{mac::EnergyParams{}};
  meter.accumulate_to(Time::seconds(1.0));
  meter.accumulate_to(Time::zero());  // would violate in an audit build
  EXPECT_EQ(sim::audit::checks_performed(), 0u);
  EXPECT_EQ(sim::audit::violations(), 0u);
}

#endif  // WSN_AUDIT_ENABLED

}  // namespace
}  // namespace wsn
