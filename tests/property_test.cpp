// Cross-module property tests and failure injection: invariants that must
// hold over randomised fields, seeds and parameter choices.
#include <gtest/gtest.h>

#include "net/field.hpp"
#include "net/topology.hpp"
#include "scenario/experiment.hpp"
#include "sim/random.hpp"
#include "trees/aggregation_trees.hpp"
#include "trees/graph.hpp"

namespace wsn {
namespace {

// --------------------------------------------------------------- topology

TEST(CrossModule, HopDistanceMatchesDijkstraOnUnitWeights) {
  sim::Rng rng{31};
  net::FieldSpec spec;
  spec.nodes = 80;
  const net::Topology topo{net::generate_connected_field(spec, rng),
                           spec.radio_range_m};
  const trees::Graph g = trees::graph_from_topology(topo);
  const auto sp = trees::dijkstra(g, 0);
  for (net::NodeId v = 0; v < topo.node_count(); v += 7) {
    const int bfs = topo.hop_distance(0, v);
    ASSERT_GE(bfs, 0);
    EXPECT_DOUBLE_EQ(sp.dist[v], static_cast<double>(bfs)) << "node " << v;
  }
}

// GIT source-order invariance of *feasibility* and boundedness: any order
// yields a valid tree within the approximation bound of the best order.
TEST(CrossModule, GitOrderVariantsStayBounded) {
  sim::Rng rng{32};
  net::FieldSpec spec;
  spec.nodes = 70;
  const net::Topology topo{net::generate_connected_field(spec, rng),
                           spec.radio_range_m};
  const trees::Graph g = trees::graph_from_topology(topo);

  std::vector<trees::Vertex> sources{5, 12, 23, 34, 45};
  const trees::Vertex sink = 60;
  double best = 1e18, worst = 0;
  for (int perm = 0; perm < 10; ++perm) {
    rng.shuffle(sources);
    const auto t = trees::greedy_incremental_tree(g, sink, sources);
    ASSERT_TRUE(t.feasible);
    best = std::min(best, t.total_weight);
    worst = std::max(worst, t.total_weight);
  }
  EXPECT_LE(worst, 2.0 * best);  // loose sanity: order matters only mildly
}

// ------------------------------------------------- end-to-end invariants

struct EndToEndCase {
  core::Algorithm algorithm;
  std::uint64_t seed;
  bool failures;
};

class EndToEndProperty : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEndProperty, InvariantsHold) {
  const auto& c = GetParam();
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = 90;
  cfg.algorithm = c.algorithm;
  cfg.seed = c.seed;
  cfg.duration = sim::Time::seconds(90.0);
  cfg.failures.enabled = c.failures;

  const auto res = scenario::run_experiment(cfg);

  // Conservation-style invariants.
  EXPECT_LE(res.metrics.distinct_received,
            res.metrics.distinct_generated * res.sinks.size());
  EXPECT_GE(res.metrics.delivery_ratio, 0.0);
  EXPECT_LE(res.metrics.delivery_ratio, 1.0 + 1e-9);
  EXPECT_GE(res.metrics.avg_delay, 0.0);

  // Energy envelope: between all-idle (some nodes were off under failures)
  // and all-transmit.
  const double t = cfg.duration.as_seconds();
  const double n = static_cast<double>(cfg.field.nodes);
  EXPECT_GT(res.metrics.total_energy_joules, 0.0);
  EXPECT_LE(res.metrics.total_energy_joules, cfg.energy.tx_watts * t * n);
  if (!c.failures) {
    EXPECT_GE(res.metrics.total_energy_joules,
              cfg.energy.idle_watts * t * n * 0.999);
  }
  EXPECT_LE(res.metrics.total_active_energy_joules,
            res.metrics.total_energy_joules + 1e-9);

  // The protocol always establishes something.
  EXPECT_GT(res.protocol.reinforcements_sent, 0u);
  EXPECT_GT(res.frames_sent, 0u);

  // A static network must deliver nearly everything; a failing one most.
  EXPECT_GT(res.metrics.delivery_ratio, c.failures ? 0.35 : 0.9);
}

std::vector<EndToEndCase> end_to_end_cases() {
  std::vector<EndToEndCase> cases;
  for (auto alg : {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      cases.push_back({alg, seed, false});
      cases.push_back({alg, seed, true});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndProperty, ::testing::ValuesIn(end_to_end_cases()),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      return std::string(core::to_string(info.param.algorithm)) + "_s" +
             std::to_string(info.param.seed) +
             (info.param.failures ? "_fail" : "_static");
    });

// ---------------------------------------------- aggregation-fn properties

class AggregationSizeProperty
    : public ::testing::TestWithParam<std::shared_ptr<agg::AggregationFn>> {};

TEST_P(AggregationSizeProperty, MonotoneAndPositive) {
  const auto& fn = *GetParam();
  std::uint32_t prev = 0;
  for (std::size_t d = 1; d <= 20; ++d) {
    const auto z = fn.size_bytes(d);
    EXPECT_GT(z, 0u);
    EXPECT_GE(z, prev) << fn.name() << " at d=" << d;
    prev = z;
  }
}

TEST_P(AggregationSizeProperty, NeverWorseThanUnaggregatedLinearBound) {
  // Any sane aggregation of d items is no bigger than d separate packets
  // of (event + header) bytes.
  const auto& fn = *GetParam();
  for (std::size_t d = 1; d <= 20; ++d) {
    EXPECT_LE(fn.size_bytes(d), d * (64 + 36)) << fn.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, AggregationSizeProperty,
    ::testing::Values(std::make_shared<agg::PerfectAggregation>(64),
                      std::make_shared<agg::LinearAggregation>(28, 36),
                      std::make_shared<agg::PackingAggregation>(64, 36),
                      std::make_shared<agg::TimestampAggregation>(28, 24, 36)),
    [](const auto& info) { return info.param->name(); });

// ------------------------------------------------ parameter-sweep checks

class ExploratoryPeriodProperty : public ::testing::TestWithParam<double> {};

TEST_P(ExploratoryPeriodProperty, DeliveryHoldsAcrossPeriods) {
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = 80;
  cfg.algorithm = core::Algorithm::kGreedy;
  cfg.seed = 3;
  cfg.duration = sim::Time::seconds(90.0);
  cfg.diffusion.exploratory_period = sim::Time::seconds(GetParam());
  const auto res = scenario::run_experiment(cfg);
  EXPECT_GT(res.metrics.delivery_ratio, 0.9) << "period " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Periods, ExploratoryPeriodProperty,
                         ::testing::Values(10.0, 25.0, 50.0));

}  // namespace
}  // namespace wsn
