// Slab EventQueue stress tests: fire-order equivalence against a naive
// reference model, steady-state allocation-freeness of the hot path, and
// clear()/slot-reuse regressions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/inline_fn.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

// ---------------------------------------------------------------- counting
// Global allocation counter. Linking a replacement operator new into a test
// binary counts every heap allocation made anywhere in the process, which
// is exactly what the steady-state test needs: after warm-up, a full
// schedule/cancel/pop cycle on the EventQueue must not allocate at all.
//
// GCC flags `delete`-site inlining of the malloc-backed replacement pair as
// mismatched new/delete; the pair IS consistent (new -> malloc,
// delete -> free), so silence the false positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#if defined(__has_feature)  // clang spells sanitizer detection this way
#define WSN_TEST_HAS_FEATURE(x) __has_feature(x)
#else
#define WSN_TEST_HAS_FEATURE(x) 0
#endif
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace wsn::sim {
namespace {

// ------------------------------------------------------------- size proofs
// The engine's cost contract: every closure family the simulator schedules
// fits InlineFn's inline buffer. Shapes mirror the real call sites (MAC
// timers, channel sweeps, diffusion re-floods with a shared payload).
struct FakeTx {};
[[maybe_unused]] void engine_closure_sizes(void* self,
                                           std::shared_ptr<FakeTx> tx,
                                           std::uint64_t mid) {
  auto this_only = [self] { (void)self; };
  auto this_ptr = [self, tx] { (void)self; };
  auto this_ptr_id = [self, tx, mid] { (void)self, (void)mid; };
  static_assert(sizeof(this_only) <= InlineFn::kInlineBytes);
  static_assert(sizeof(this_ptr) <= InlineFn::kInlineBytes);
  static_assert(sizeof(this_ptr_id) <= InlineFn::kInlineBytes);
}
// Tests hand std::function lvalues to schedule(); they must fit too.
static_assert(sizeof(std::function<void()>) <= InlineFn::kInlineBytes,
              "InlineFn must hold a std::function for test scheduling");
static_assert(!std::is_copy_constructible_v<InlineFn>);
static_assert(std::is_nothrow_move_constructible_v<InlineFn>);

// ---------------------------------------------------------------- reference
/// Naive but obviously-correct event queue: an ordered map keyed by
/// (time, insertion seq). The oracle for the randomized stress test.
class ReferenceQueue {
 public:
  std::uint64_t schedule(Time at) {
    const std::uint64_t seq = next_seq_++;
    pending_.emplace(std::pair{at, seq}, seq);
    return seq;
  }

  bool cancel(std::uint64_t seq) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second == seq) {
        pending_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool pending(std::uint64_t seq) const {
    for (const auto& [key, s] : pending_) {
      if (s == seq) return true;
    }
    return false;
  }

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }
  [[nodiscard]] Time next_time() const {
    return pending_.empty() ? Time::max() : pending_.begin()->first.first;
  }

  /// Pops the earliest (time, seq); returns (time, payload seq).
  std::pair<Time, std::uint64_t> pop() {
    auto it = pending_.begin();
    auto fired = std::pair{it->first.first, it->second};
    pending_.erase(it);
    return fired;
  }

 private:
  std::map<std::pair<Time, std::uint64_t>, std::uint64_t> pending_;
  std::uint64_t next_seq_ = 1;
};

// -------------------------------------------------------------------- tests

TEST(EventQueueStress, MatchesReferenceModelOverRandomOps) {
  // ~1e5 interleaved schedule/cancel/pop/pending ops driven by a pinned
  // stream. The slab queue must fire the same (time, payload) sequence and
  // answer pending()/size()/next_time() identically at every step.
  Rng rng{2026};
  EventQueue q;
  ReferenceQueue ref;

  struct Tracked {
    EventHandle handle;
    std::uint64_t ref_seq;
  };
  std::vector<Tracked> seen;  // all handles ever issued, live or stale
  std::vector<std::uint64_t> fired;
  std::vector<std::uint64_t> ref_fired;

  Time now = Time::zero();
  constexpr int kOps = 100'000;
  for (int op = 0; op < kOps; ++op) {
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 45 || q.empty()) {
      // Schedule at a time >= the last pop so pop order stays monotone.
      const Time at = now + Time::nanos(rng.uniform_int(0, 5'000'000));
      const std::uint64_t ref_seq = ref.schedule(at);
      EventHandle h =
          q.schedule(at, [ref_seq, &fired] { fired.push_back(ref_seq); });
      ASSERT_TRUE(h.valid());
      ASSERT_TRUE(q.pending(h));
      seen.push_back({h, ref_seq});
    } else if (roll < 65) {
      // Cancel a random ever-issued handle (possibly long stale); the
      // slab's generation check must agree with the oracle.
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(seen.size()) - 1));
      ASSERT_EQ(q.cancel(seen[idx].handle), ref.cancel(seen[idx].ref_seq));
      ASSERT_FALSE(q.pending(seen[idx].handle));
    } else if (roll < 75) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(seen.size()) - 1));
      ASSERT_EQ(q.pending(seen[idx].handle), ref.pending(seen[idx].ref_seq));
    } else {
      // Pop one event from each; time and payload must match.
      ASSERT_EQ(q.next_time(), ref.next_time());
      auto f = q.pop();
      const auto [ref_at, ref_seq] = ref.pop();
      ASSERT_EQ(f.at, ref_at);
      now = f.at;
      f.fn();
      ref_fired.push_back(ref_seq);
    }
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
  }
  while (!q.empty()) {
    ASSERT_EQ(q.next_time(), ref.next_time());
    auto f = q.pop();
    const auto [ref_at, ref_seq] = ref.pop();
    ASSERT_EQ(f.at, ref_at);
    f.fn();
    ref_fired.push_back(ref_seq);
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(fired, ref_fired);
}

TEST(EventQueueStress, SteadyStateHotPathDoesNotAllocate) {
  EventQueue q;
  std::uint64_t sink = 0;
  std::vector<EventHandle> handles;
  constexpr int kBatch = 256;
  handles.reserve(kBatch);

  // One full cycle: schedule a batch (closures capture a pointer + a
  // value, like the engine's), cancel a third, drain the rest.
  auto cycle = [&](Time base) {
    handles.clear();
    for (int i = 0; i < kBatch; ++i) {
      handles.push_back(q.schedule(base + Time::nanos((i * 37) % 1000),
                                   [&sink, i] { sink += i; }));
    }
    for (int i = 0; i < kBatch; i += 3) {
      q.cancel(handles[static_cast<std::size_t>(i)]);
    }
    Time last = Time::zero();
    while (!q.empty()) {
      auto f = q.pop();
      last = f.at;
      f.fn();
    }
    return last;
  };

  // Warm-up grows the slab, heap vector and free list to capacity.
  cycle(Time::seconds(1.0));
  cycle(Time::seconds(2.0));

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  cycle(Time::seconds(3.0));
  cycle(Time::seconds(4.0));
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    WSN_TEST_HAS_FEATURE(address_sanitizer) ||                       \
    WSN_TEST_HAS_FEATURE(thread_sanitizer)
  // Sanitizer runtimes allocate behind the scenes; the strict zero-alloc
  // assertion only holds in plain builds (the tier-1 gate runs it).
  (void)before;
  (void)after;
#else
  EXPECT_EQ(after - before, 0u)
      << "EventQueue hot path allocated in steady state";
#endif
  EXPECT_GT(sink, 0u);
}

TEST(EventQueueStress, CancelReleasesCapturedResourcesEagerly) {
  // Cancelling must destroy the stored closure immediately — captured
  // shared_ptrs (e.g. a Transmission) would otherwise live until the stale
  // heap entry happens to surface.
  EventQueue q;
  auto token = std::make_shared<int>(7);
  EventHandle h = q.schedule(Time::seconds(1.0), [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(token.use_count(), 1);
  // The stale heap entry must be skipped cleanly afterwards.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());
}

TEST(EventQueueStress, ClearResetsWatermarkAndStalesHandles) {
  // Regression for clear(): a cleared queue must accept earlier times
  // again (pop watermark reset — WSN_AUDIT would abort otherwise), old
  // handles must be stale for both cancel() and pending(), and recycled
  // slots must not leak or alias.
  EventQueue q;
  auto token = std::make_shared<int>(1);
  std::vector<EventHandle> old;
  for (int i = 0; i < 16; ++i) {
    old.push_back(
        q.schedule(Time::seconds(100.0 + i), [token] { (void)*token; }));
  }
  // Advance the watermark past the times used after clear().
  (void)q.pop();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), Time::max());
  // clear() destroys stored closures, not just forgets them.
  EXPECT_EQ(token.use_count(), 1);
  for (EventHandle h : old) {
    EXPECT_FALSE(q.pending(h));
    EXPECT_FALSE(q.cancel(h));
  }

  // Reuse: earlier-than-watermark times are legal again, slots recycle
  // without cross-talk, and the fire order is correct.
  std::vector<int> order;
  std::vector<EventHandle> fresh;
  for (int i = 0; i < 16; ++i) {
    fresh.push_back(q.schedule(Time::seconds(16.0 - i),
                               [i, &order] { order.push_back(i); }));
  }
  // Old handles are still inert even though their slots were recycled.
  for (EventHandle h : old) {
    EXPECT_FALSE(q.cancel(h));
  }
  EXPECT_EQ(q.size(), 16u);
  while (!q.empty()) q.pop().fn();
  const std::vector<int> expected{15, 14, 13, 12, 11, 10, 9, 8,
                                  7,  6,  5,  4,  3,  2,  1, 0};
  EXPECT_EQ(order, expected);

  // A second clear() on a popped-empty queue is a no-op that still stales
  // outstanding handles.
  q.clear();
  for (EventHandle h : fresh) {
    EXPECT_FALSE(q.pending(h));
    EXPECT_FALSE(q.cancel(h));
  }
}

TEST(EventQueueStress, HandleGenerationsSurviveHeavySlotReuse) {
  // Recycle one slot thousands of times; every stale handle must stay
  // permanently inert.
  EventQueue q;
  std::vector<EventHandle> stale;
  for (int i = 0; i < 4096; ++i) {
    EventHandle h = q.schedule(Time::nanos(i), [] {});
    q.pop().fn();
    stale.push_back(h);
  }
  EventHandle live = q.schedule(Time::nanos(1), [] {});
  for (EventHandle h : stale) {
    EXPECT_FALSE(q.pending(h));
    EXPECT_FALSE(q.cancel(h));
  }
  EXPECT_TRUE(q.pending(live));
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace wsn::sim
