// Protocol memory-model tests: the recycling arena itself, steady-state
// allocation-freeness of the data path over an established route, and a
// fig-5-style experiment pinned to a loose allocs-per-event ceiling so the
// pool cannot silently regress back to per-send heap traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "diffusion/messages.hpp"
#include "protocol_rig.hpp"
#include "scenario/experiment.hpp"
#include "sim/arena.hpp"

// ---------------------------------------------------------------- counting
// Global allocation counter, same pattern as event_queue_stress_test: a
// replacement operator new counts every heap allocation in the process.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#if defined(__has_feature)
#define WSN_TEST_HAS_FEATURE(x) __has_feature(x)
#else
#define WSN_TEST_HAS_FEATURE(x) 0
#endif

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    WSN_TEST_HAS_FEATURE(address_sanitizer) ||                       \
    WSN_TEST_HAS_FEATURE(thread_sanitizer)
#define WSN_TEST_UNDER_SANITIZER 1
#else
#define WSN_TEST_UNDER_SANITIZER 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace wsn {
namespace {

TEST(RecyclingArena, RecyclesSlotsPerSizeClass) {
  sim::RecyclingArena arena;
  // First acquisition creates a slot; releasing and re-making the same
  // shape must reuse it, not create another.
  auto a = arena.make<diffusion::ExploratoryMsg>();
  const auto created_once = arena.stats().blocks_created;
  EXPECT_GE(created_once, 1u);
  a.reset();
  EXPECT_EQ(arena.stats().blocks_free, created_once);
  auto b = arena.make<diffusion::ExploratoryMsg>();
  EXPECT_EQ(arena.stats().blocks_created, created_once);
  EXPECT_EQ(arena.stats().blocks_live, created_once);
  b.reset();

  // Live accounting: N concurrent messages -> N live slots, back to zero
  // when the last references drop.
  std::vector<std::shared_ptr<diffusion::ReinforcementMsg>> held;
  for (int i = 0; i < 8; ++i) {
    held.push_back(arena.make<diffusion::ReinforcementMsg>());
  }
  EXPECT_EQ(arena.stats().blocks_live, 8u);
  held.clear();
  EXPECT_EQ(arena.stats().blocks_live, 0u);
}

TEST(RecyclingArena, PooledDataMsgItemsUseTheArena) {
  sim::RecyclingArena arena;
  {
    auto msg = arena.make<diffusion::DataMsg>(arena);
    for (int i = 0; i < 32; ++i) {
      msg->items.push_back(diffusion::DataItem{{1, static_cast<diffusion::EventSeq>(i)}, 0});
    }
    EXPECT_GE(arena.stats().blocks_live, 2u);  // slot + item buffer(s)
  }
  // Everything returned to the free lists when the message died.
  EXPECT_EQ(arena.stats().blocks_live, 0u);
  EXPECT_GT(arena.stats().blocks_free, 0u);
}

TEST(RecyclingArena, SteadyStateMakeDoesNotTouchTheHeap) {
  sim::RecyclingArena arena;
  // Warm one slot per shape.
  arena.make<diffusion::ExploratoryMsg>().reset();
  {
    auto warm = arena.make<diffusion::DataMsg>(arena);
    warm->items.reserve(16);
  }
  const auto before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    auto msg = arena.make<diffusion::DataMsg>(arena);
    msg->items.reserve(16);
    msg->items.push_back(diffusion::DataItem{{2, 1}, 0});
  }
  const auto after = g_allocs.load(std::memory_order_relaxed);
#if !WSN_TEST_UNDER_SANITIZER
  EXPECT_EQ(after - before, 0u) << "pooled make/release cycle hit the heap";
#else
  (void)before;
  (void)after;
#endif
}

// A 4-node chain source -> relay -> relay -> sink, all within range of
// their neighbours only. Once gradients, the reinforced path, and the
// caches' working set are warm, the periodic data cycle (generate, flush,
// MAC send/ack, receive, flush, ...) must run without any heap allocation.
TEST(ProtocolPool, EstablishedDataPathIsAllocationFreeAtSteadyState) {
  std::vector<net::Vec2> chain{{0.0, 0.0}, {30.0, 0.0}, {60.0, 0.0},
                               {90.0, 0.0}};
  testing::ProtocolRig rig{chain, core::Algorithm::kOpportunistic, {},   40.0,
                           1,     /*with_metrics=*/false};
  rig.node(3).make_sink(rig.whole_field());
  rig.node(0).set_detecting(true);
  rig.start_all();

  // Warm past several exploratory periods (50 s) and housekeeping sweeps so
  // every cache, scratch buffer, pool bucket, and MAC ring has seen its
  // working-set high-water mark.
  rig.run_for(230.0);
  const auto sent_before = rig.node(0).stats().data_sent;

  const auto before = g_allocs.load(std::memory_order_relaxed);
  rig.run_for(280.0);
  const auto after = g_allocs.load(std::memory_order_relaxed);

  // The path carried real traffic during the measured window.
  EXPECT_GT(rig.node(0).stats().data_sent, sent_before + 50);
#if !WSN_TEST_UNDER_SANITIZER
  EXPECT_EQ(after - before, 0u)
      << "protocol data path allocated at steady state";
#else
  (void)before;
  (void)after;
#endif
}

// Fig-5-style field: the pool must absorb per-send message traffic, so
// total heap allocations stay a small constant per dispatched event even
// across a full experiment (interest floods, exploratory floods, failures'
// worth of cache churn). The seed harness ran at ~the same order of
// allocations *per data packet*; with the pool, the whole-run average must
// stay under one allocation per two events (warm-up amortised).
TEST(ProtocolPool, Fig5RunStaysUnderAllocsPerEventCeiling) {
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = 50;
  cfg.duration = sim::Time::seconds(120.0);
  cfg.seed = 1;

  const auto before = g_allocs.load(std::memory_order_relaxed);
  const scenario::RunResult result = scenario::run_experiment(cfg);
  const auto after = g_allocs.load(std::memory_order_relaxed);

  ASSERT_GT(result.events_dispatched, 10'000u);
  EXPECT_GT(result.pool_acquires, 0u);
  EXPECT_GT(result.pool_slots_created, 0u);
  // Slots recycle: the pool must have served far more acquisitions than it
  // ever created slots for.
  EXPECT_GT(result.pool_acquires, result.pool_slots_created * 4);
  // Everything pooled is released by teardown-time of the simulator; at
  // harvest (nodes still alive) the live count is bounded by in-flight
  // frames, not by traffic volume.
  EXPECT_LT(result.pool_slots_live, 2'000u);
#if !WSN_TEST_UNDER_SANITIZER
  const double per_event = static_cast<double>(after - before) /
                           static_cast<double>(result.events_dispatched);
  EXPECT_LT(per_event, 0.5) << "allocs/event regressed: " << per_event;
#else
  (void)before;
  (void)after;
#endif
}

}  // namespace
}  // namespace wsn
