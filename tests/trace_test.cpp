// Tests for the src/trace subsystem: binary round-trip, the flight ring,
// reader/diff semantics, experiment wiring, parallel-vs-serial
// bit-identity and the audit-triggered flight-recorder dump.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/sweep.hpp"
#include "sim/audit.hpp"
#include "sim/time.hpp"
#include "trace/reader.hpp"
#include "trace/trace.hpp"

namespace wsn::trace {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

Record rec(std::int64_t t_ns, RecordKind kind, std::uint32_t node,
           std::uint32_t peer, std::uint64_t a, std::uint64_t b) {
  return Record{t_ns, kind, node, peer, a, b};
}

TEST(Trace, BinaryRoundTripPreservesHeaderAndRecords) {
  const std::string path = tmp_path("wsn_trace_roundtrip.bin");
  const std::vector<Record> written = {
      rec(0, RecordKind::kMacTxStart, 3, 7, 101, 24),
      rec(0, RecordKind::kChannelSweep, 3, kNoPeer, 101, 5),
      rec(1'000'000'000, RecordKind::kMacRx, 7, 3, 101, 24),
      // Out-of-order time exercises the zigzag delta path.
      rec(999'999'000, RecordKind::kCacheHit, 7, 3, 0xffffffffffffULL,
          0x8000000000000000ULL),
      rec(999'999'000, RecordKind::kNodeDown, 12, kNoPeer, 0, 0),
  };
  {
    Tracer tracer{Tracer::Options{
        .path = path, .ring_capacity = 0, .seed = 42, .config_digest = 0xabc}};
    ASSERT_TRUE(tracer.file_open()) << tracer.error();
    for (const Record& r : written) {
      tracer.emit(r.kind, sim::Time::nanos(r.t_ns), r.node, r.peer, r.a, r.b);
    }
    EXPECT_EQ(tracer.counters().total(), written.size());
    EXPECT_EQ(tracer.counters().of(RecordKind::kMacTxStart), 1u);
  }  // destructor flushes and closes

  TraceReader reader{path};
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.header().seed, 42u);
  EXPECT_EQ(reader.header().config_digest, 0xabcu);
  std::vector<Record> read;
  Record r;
  while (reader.next(r)) read.push_back(r);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(read, written);
  std::remove(path.c_str());
}

TEST(Trace, ReaderRejectsTruncatedFile) {
  const std::string path = tmp_path("wsn_trace_trunc.bin");
  {
    Tracer tracer{Tracer::Options{
        .path = path, .ring_capacity = 0, .seed = 1, .config_digest = 2}};
    for (int i = 0; i < 50; ++i) {
      tracer.emit(RecordKind::kMacBackoff, sim::Time::nanos(i * 1000), 1,
                  kNoPeer, 7, 31);
    }
  }
  // Chop the file mid-record.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 30);
  ASSERT_EQ(::truncate(path.c_str(), size - 3), 0);

  TraceReader reader{path};
  ASSERT_TRUE(reader.ok()) << reader.error();
  Record r;
  while (reader.next(r)) {
  }
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated"), std::string::npos)
      << reader.error();
  std::remove(path.c_str());
}

TEST(Trace, RingKeepsTheLastNRecordsOldestFirst) {
  Tracer tracer{Tracer::Options{
      .path = "", .ring_capacity = 4, .seed = 9, .config_digest = 0}};
  EXPECT_FALSE(tracer.file_open());
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.emit(RecordKind::kMacTxStart, sim::Time::nanos(i), 1, 2, i, 0);
  }
  const std::vector<Record> snap = tracer.ring_snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].a, 6 + i);  // records 6..9 survive, oldest first
  }
  EXPECT_EQ(tracer.counters().total(), 10u);
}

TEST(Trace, ResolveTracePathSubstitutesOrSuffixesTheSeed) {
  EXPECT_EQ(resolve_trace_path("/tmp/t-{seed}.bin", 17), "/tmp/t-17.bin");
  EXPECT_EQ(resolve_trace_path("/tmp/{seed}/{seed}.bin", 3), "/tmp/3/3.bin");
  EXPECT_EQ(resolve_trace_path("/tmp/t.bin", 17), "/tmp/t.bin.s17");
  EXPECT_EQ(resolve_trace_path("", 17), "");
}

TEST(Trace, SpecFromEnvReadsAndValidatesTheKnobs) {
  ::setenv("WSN_TRACE", "/tmp/env-trace.bin", 1);
  ::setenv("WSN_TRACE_RING", "4096", 1);
  TraceSpec spec = spec_from_env();
  EXPECT_EQ(spec.path, "/tmp/env-trace.bin");
  EXPECT_EQ(spec.ring_capacity, 4096u);
  EXPECT_TRUE(spec.enabled());

  ::setenv("WSN_TRACE_RING", "lots", 1);  // malformed: warn and disable
  spec = spec_from_env();
  EXPECT_EQ(spec.ring_capacity, 0u);

  ::unsetenv("WSN_TRACE");
  ::unsetenv("WSN_TRACE_RING");
  EXPECT_FALSE(spec_from_env().enabled());
}

TEST(Trace, DiffReportsTheFirstDivergentRecord) {
  const std::string pa = tmp_path("wsn_trace_diff_a.bin");
  const std::string pb = tmp_path("wsn_trace_diff_b.bin");
  {
    Tracer a{Tracer::Options{
        .path = pa, .ring_capacity = 0, .seed = 5, .config_digest = 9}};
    Tracer b{Tracer::Options{
        .path = pb, .ring_capacity = 0, .seed = 5, .config_digest = 9}};
    for (std::uint64_t i = 0; i < 6; ++i) {
      a.emit(RecordKind::kMacRx, sim::Time::nanos(i * 10), 1, 2, i, 0);
      // Injected divergence: record index 3 carries a different payload.
      b.emit(RecordKind::kMacRx, sim::Time::nanos(i * 10), 1, 2,
             i == 3 ? 99 : i, 0);
    }
  }
  const TraceDiff diff = diff_traces(pa, pb);
  ASSERT_TRUE(diff.comparable) << diff.error;
  EXPECT_FALSE(diff.identical);
  EXPECT_FALSE(diff.header_differs);
  EXPECT_EQ(diff.first_diff_index, 3u);
  ASSERT_TRUE(diff.has_a);
  ASSERT_TRUE(diff.has_b);
  EXPECT_EQ(diff.a.a, 3u);
  EXPECT_EQ(diff.b.a, 99u);

  const TraceDiff same = diff_traces(pa, pa);
  ASSERT_TRUE(same.comparable);
  EXPECT_TRUE(same.identical);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(Trace, DiffFlagsPrefixTracesAndHeaderMismatches) {
  const std::string pa = tmp_path("wsn_trace_pfx_a.bin");
  const std::string pb = tmp_path("wsn_trace_pfx_b.bin");
  {
    Tracer a{Tracer::Options{
        .path = pa, .ring_capacity = 0, .seed = 5, .config_digest = 9}};
    Tracer b{Tracer::Options{
        .path = pb, .ring_capacity = 0, .seed = 6, .config_digest = 9}};
    for (std::uint64_t i = 0; i < 4; ++i) {
      a.emit(RecordKind::kMacRx, sim::Time::nanos(i), 1, 2, i, 0);
      if (i < 2) b.emit(RecordKind::kMacRx, sim::Time::nanos(i), 1, 2, i, 0);
    }
  }
  const TraceDiff diff = diff_traces(pa, pb);
  ASSERT_TRUE(diff.comparable) << diff.error;
  EXPECT_FALSE(diff.identical);
  EXPECT_TRUE(diff.header_differs);  // seeds 5 vs 6
  EXPECT_EQ(diff.first_diff_index, 2u);  // B ends two records early
  EXPECT_TRUE(diff.has_a);
  EXPECT_FALSE(diff.has_b);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

scenario::ExperimentConfig traced_config(std::uint64_t seed) {
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = 50;
  cfg.algorithm = core::Algorithm::kGreedy;
  cfg.duration = sim::Time::seconds(30.0);
  cfg.seed = seed;
  return cfg;
}

TEST(Trace, ExperimentWiringPopulatesFileAndCounters) {
  auto cfg = traced_config(5);
  cfg.trace.path = tmp_path("wsn_trace_exp-{seed}.bin");
  const scenario::RunResult res = scenario::run_experiment(cfg);
  EXPECT_GT(res.trace_counters.total(), 0u);
  EXPECT_GT(res.trace_counters.of(RecordKind::kMacTxStart), 0u);
  EXPECT_GT(res.trace_counters.of(RecordKind::kItemDelivered), 0u);
  EXPECT_GT(res.trace_counters.of(RecordKind::kGradientNew), 0u);

  const std::string path = resolve_trace_path(cfg.trace.path, cfg.seed);
  TraceReader reader{path};
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.header().seed, cfg.seed);
  EXPECT_EQ(reader.header().config_digest, scenario::config_digest(cfg));

  // The file holds exactly the records the counters tallied.
  CounterTable from_file;
  Record r;
  std::int64_t last_t = 0;
  while (reader.next(r)) {
    ++from_file.counts[static_cast<std::size_t>(r.kind)];
    EXPECT_GE(r.t_ns, last_t);  // the event clock is monotone
    last_t = r.t_ns;
  }
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(from_file.counts, res.trace_counters.counts);
  std::remove(path.c_str());
}

TEST(Trace, UntracedRunsKeepCountersAtZero) {
  const scenario::RunResult res = scenario::run_experiment(traced_config(5));
  EXPECT_EQ(res.trace_counters.total(), 0u);
}

TEST(Trace, SameSeedRunsProduceBitIdenticalTraces) {
  auto cfg = traced_config(8);
  cfg.trace.path = tmp_path("wsn_trace_rep_a-{seed}.bin");
  scenario::run_experiment(cfg);
  const std::string pa = resolve_trace_path(cfg.trace.path, cfg.seed);
  cfg.trace.path = tmp_path("wsn_trace_rep_b-{seed}.bin");
  scenario::run_experiment(cfg);
  const std::string pb = resolve_trace_path(cfg.trace.path, cfg.seed);

  const TraceDiff diff = diff_traces(pa, pb);
  ASSERT_TRUE(diff.comparable) << diff.error;
  EXPECT_TRUE(diff.identical);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(Trace, ParallelReplicatesTraceBitIdenticalToSerial) {
  // Three replicates, traced per seed via the {seed} placeholder: the
  // WSN_JOBS=4 engine must write byte-identical trace files to the serial
  // loop, seed by seed.
  auto cfg = traced_config(0);  // seed overridden per replicate
  cfg.duration = sim::Time::seconds(20.0);
  cfg.trace.path = tmp_path("wsn_trace_ser-{seed}.bin");
  scenario::run_replicates(cfg, 3, /*seed0=*/11, /*jobs=*/1);
  cfg.trace.path = tmp_path("wsn_trace_par-{seed}.bin");
  scenario::run_replicates(cfg, 3, /*seed0=*/11, /*jobs=*/4);

  for (std::uint64_t seed = 11; seed < 14; ++seed) {
    const std::string ps =
        resolve_trace_path(tmp_path("wsn_trace_ser-{seed}.bin"), seed);
    const std::string pp =
        resolve_trace_path(tmp_path("wsn_trace_par-{seed}.bin"), seed);
    const TraceDiff diff = diff_traces(ps, pp);
    ASSERT_TRUE(diff.comparable) << diff.error;
    EXPECT_TRUE(diff.identical) << "seed " << seed << " diverges at record "
                                << diff.first_diff_index;
    std::remove(ps.c_str());
    std::remove(pp.c_str());
  }
}

#if WSN_AUDIT_ENABLED
TEST(Trace, AuditViolationDumpsTheFlightRecorder) {
  Tracer tracer{Tracer::Options{
      .path = "", .ring_capacity = 8, .seed = 77, .config_digest = 0}};
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.emit(RecordKind::kMacTxStart, sim::Time::nanos(i * 5), 1, 2, i, 0);
  }

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  set_ring_dump_stream(sink);
  sim::audit::set_abort_on_violation(false);
  WSN_AUDIT_CHECK(false, "trace-test deliberate violation");
  sim::audit::set_abort_on_violation(true);
  set_ring_dump_stream(nullptr);
  sim::audit::reset_violations();

  std::fseek(sink, 0, SEEK_SET);
  std::string contents;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, sink)) > 0) contents.append(buf, n);
  std::fclose(sink);

  EXPECT_NE(contents.find("flight recorder (seed 77): last 8 of 20 records"),
            std::string::npos)
      << contents;
  EXPECT_NE(contents.find("mac.tx_start"), std::string::npos);
}
#endif

}  // namespace
}  // namespace wsn::trace
