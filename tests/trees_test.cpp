// Unit + property tests for the aggregation-tree algorithms.
#include <gtest/gtest.h>

#include <cmath>

#include "net/field.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "trees/aggregation_trees.hpp"
#include "trees/graph.hpp"
#include "trees/models.hpp"

namespace wsn::trees {
namespace {

/// 3×3 grid graph, unit weights, vertices numbered row-major:
///   0 1 2
///   3 4 5
///   6 7 8
Graph grid3() {
  Graph g{9};
  for (Vertex r = 0; r < 3; ++r) {
    for (Vertex c = 0; c < 3; ++c) {
      const Vertex v = r * 3 + c;
      if (c + 1 < 3) g.add_edge(v, v + 1, 1.0);
      if (r + 1 < 3) g.add_edge(v, v + 3, 1.0);
    }
  }
  return g;
}

TEST(Dijkstra, DistancesOnGrid) {
  const auto g = grid3();
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[4], 2.0);
  EXPECT_DOUBLE_EQ(sp.dist[8], 4.0);
  // Parent chain from 8 reaches 0 in exactly 4 hops.
  int hops = 0;
  for (Vertex v = 8; v != 0; v = sp.parent[v]) ++hops;
  EXPECT_EQ(hops, 4);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph g{3};
  g.add_edge(0, 1, 1.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(sp.dist[2]));
  EXPECT_EQ(sp.parent[2], kNoVertex);
}

TEST(Dijkstra, MultiSourceTakesNearestSeed) {
  const auto g = grid3();
  const Vertex seeds[] = {0, 8};
  const auto sp = dijkstra_multi(g, seeds);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);  // near 0
  EXPECT_DOUBLE_EQ(sp.dist[7], 1.0);  // near 8
  EXPECT_DOUBLE_EQ(sp.dist[4], 2.0);
}

TEST(Trees, SptSharesCommonPrefixes) {
  // Sink 0; sources 2 and 8. SPT = union of two shortest paths.
  const auto g = grid3();
  const Vertex sources[] = {2, 8};
  const auto t = shortest_path_tree(g, 0, sources);
  EXPECT_TRUE(t.feasible);
  // Path to 2 has 2 edges; path to 8 has 4; overlap depends on tie-breaks
  // but the result must be between max(4) and 6 edges.
  EXPECT_GE(t.edges.size(), 4u);
  EXPECT_LE(t.edges.size(), 6u);
  EXPECT_DOUBLE_EQ(t.total_weight, static_cast<double>(t.edges.size()));
}

TEST(Trees, GitGraftsAtClosestPoint) {
  // Line: 0-1-2-3-4 plus 5 hanging off 2. Sink 0, sources 4 then 5.
  Graph g{6};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(2, 5, 1.0);
  const Vertex sources[] = {4, 5};
  const auto t = greedy_incremental_tree(g, 0, sources);
  EXPECT_TRUE(t.feasible);
  // First source: path 0-1-2-3-4 (4 edges); second grafts at 2 (+1 edge).
  EXPECT_DOUBLE_EQ(t.total_weight, 5.0);
  EXPECT_TRUE(t.edges.contains({2, 5}));
}

TEST(Trees, GitNeverWorseThanDisjointPaths) {
  const auto g = grid3();
  const Vertex sources[] = {2, 6, 8};
  const auto git = greedy_incremental_tree(g, 0, sources);
  const auto sp = dijkstra(g, 0);
  double disjoint = 0.0;
  for (Vertex s : sources) disjoint += sp.dist[s];
  EXPECT_LE(git.total_weight, disjoint);
}

TEST(Trees, SteinerExactOnKnownInstance) {
  // Star-ish: terminals 2, 6, 8 + sink 0 on the grid; the optimal Steiner
  // tree uses the centre. Known optimum: 0-1,1-2,1-4,4-7,7-6,7-8 = 6? Check
  // by construction: connecting {0,2,6,8} needs at least 6 unit edges.
  const auto g = grid3();
  const Vertex sources[] = {2, 6, 8};
  const auto st = steiner_tree_exact(g, 0, sources);
  EXPECT_TRUE(st.feasible);
  EXPECT_DOUBLE_EQ(st.total_weight, 6.0);
}

TEST(Trees, SteinerSingleTerminalIsEmpty) {
  const auto g = grid3();
  const auto st = steiner_tree_exact(g, 0, {});
  EXPECT_TRUE(st.feasible);
  EXPECT_TRUE(st.edges.empty());
}

TEST(Trees, SteinerInfeasibleWhenDisconnected) {
  Graph g{3};
  g.add_edge(0, 1, 1.0);
  const Vertex sources[] = {2};
  EXPECT_FALSE(steiner_tree_exact(g, 0, sources).feasible);
  EXPECT_FALSE(shortest_path_tree(g, 0, sources).feasible);
  EXPECT_FALSE(greedy_incremental_tree(g, 0, sources).feasible);
}

TEST(Trees, DuplicateSourcesHandled) {
  const auto g = grid3();
  const Vertex sources[] = {8, 8, 8};
  const auto git = greedy_incremental_tree(g, 0, sources);
  EXPECT_DOUBLE_EQ(git.total_weight, 4.0);
  const auto st = steiner_tree_exact(g, 0, sources);
  EXPECT_DOUBLE_EQ(st.total_weight, 4.0);
}

/// Checks a Tree is acyclic & connected over its own vertex set by union-find.
bool is_forest(const Tree& t) {
  std::map<Vertex, Vertex> parent;
  std::function<Vertex(Vertex)> find = [&](Vertex v) {
    auto it = parent.find(v);
    if (it == parent.end() || it->second == v) return v;
    return it->second = find(it->second);
  };
  for (const auto& [u, v] : t.edges) {
    const Vertex ru = find(u), rv = find(v);
    if (ru == rv) return false;  // cycle
    parent[ru] = rv;
    parent.try_emplace(u, rv);
    parent.try_emplace(v, rv);
  }
  return true;
}

// Property suite over random unit-disk fields:
//  * SPT, GIT, Steiner are forests,
//  * Steiner optimum <= GIT <= 2·(1 − 1/ℓ)·optimum (Takahashi–Matsuyama),
//  * Steiner optimum <= SPT.
class TreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeProperty, BoundsOnRandomFields) {
  sim::Rng rng{GetParam()};
  net::FieldSpec spec;
  spec.nodes = 60;
  spec.side_m = 150.0;
  const auto pts = net::generate_connected_field(spec, rng);
  const net::Topology topo{pts, spec.radio_range_m};
  const Graph g = graph_from_topology(topo);

  auto inst = make_random_sources_instance(topo, 5, rng);
  const auto spt = shortest_path_tree(g, inst.sink, inst.sources);
  const auto git = greedy_incremental_tree(g, inst.sink, inst.sources);
  const auto opt = steiner_tree_exact(g, inst.sink, inst.sources);
  ASSERT_TRUE(spt.feasible);
  ASSERT_TRUE(git.feasible);
  ASSERT_TRUE(opt.feasible);

  EXPECT_TRUE(is_forest(spt));
  EXPECT_TRUE(is_forest(git));
  EXPECT_TRUE(is_forest(opt));

  EXPECT_LE(opt.total_weight, git.total_weight + 1e-9);
  EXPECT_LE(opt.total_weight, spt.total_weight + 1e-9);
  const double l = 6.0;  // terminals = 5 sources + sink
  EXPECT_LE(git.total_weight, 2.0 * (1.0 - 1.0 / l) * opt.total_weight + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Trees, WeightedGraphShortestPaths) {
  // Weighted triangle + tail: 0-1 (5), 0-2 (1), 2-1 (1), 1-3 (2).
  Graph g{4};
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  g.add_edge(1, 3, 2.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 2.0);  // via 2, not the direct 5-edge
  EXPECT_DOUBLE_EQ(sp.dist[3], 4.0);
  EXPECT_EQ(sp.parent[1], 2u);
}

TEST(Trees, GitOnWeightedGraphPrefersCheapGraft) {
  // Trunk 0-1-2 with weights 1; source A=3 via 2 (w=1); source B=4 can
  // reach the tree at 2 for weight 1.5 or go directly to 0 for weight 2.2.
  Graph g{5};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(2, 4, 1.5);
  g.add_edge(0, 4, 2.2);
  const Vertex sources[] = {3, 4};
  const auto git = greedy_incremental_tree(g, 0, sources);
  EXPECT_TRUE(git.edges.contains({2, 4}));
  EXPECT_FALSE(git.edges.contains({0, 4}));
  EXPECT_DOUBLE_EQ(git.total_weight, 4.5);

  // The SPT, by contrast, routes B over its own shortest path (2.2 < 3.5).
  const auto spt = shortest_path_tree(g, 0, sources);
  EXPECT_TRUE(spt.edges.contains({0, 4}));
  EXPECT_DOUBLE_EQ(spt.total_weight, 3.0 + 2.2);
}

TEST(Trees, SteinerExactOnWeightedGraph) {
  // Star centre 4 connects terminals 0..3 with weight 1 each; pairwise
  // terminal edges cost 1.9. Optimal Steiner tree uses the centre (4 x 1).
  Graph g{5};
  for (Vertex t = 0; t < 4; ++t) g.add_edge(t, 4, 1.0);
  g.add_edge(0, 1, 1.9);
  g.add_edge(1, 2, 1.9);
  g.add_edge(2, 3, 1.9);
  const Vertex sources[] = {1, 2, 3};
  const auto st = steiner_tree_exact(g, 0, sources);
  EXPECT_DOUBLE_EQ(st.total_weight, 4.0);
  for (Vertex t = 0; t < 4; ++t) EXPECT_TRUE(st.edges.contains({t, 4}));
}

TEST(Models, EventRadiusSourcesAreWithinRadius) {
  sim::Rng rng{5};
  net::FieldSpec spec;
  spec.nodes = 120;
  const auto pts = net::generate_uniform_field(spec, rng);
  const net::Topology topo{pts, spec.radio_range_m};
  for (int i = 0; i < 20; ++i) {
    const auto inst = make_event_radius_instance(topo, 30.0, rng);
    EXPECT_LT(inst.sink, topo.node_count());
    for (Vertex s : inst.sources) {
      EXPECT_NE(s, inst.sink);
      // All pairs of sources are within one sensing diameter.
      for (Vertex t : inst.sources) {
        EXPECT_LE(distance(topo.position(s), topo.position(t)), 60.0 + 1e-9);
      }
    }
  }
}

TEST(Models, RandomSourcesAreDistinctAndExcludeSink) {
  sim::Rng rng{6};
  net::FieldSpec spec;
  spec.nodes = 80;
  const net::Topology topo{net::generate_uniform_field(spec, rng),
                           spec.radio_range_m};
  for (int i = 0; i < 20; ++i) {
    const auto inst = make_random_sources_instance(topo, 10, rng);
    EXPECT_EQ(inst.sources.size(), 10u);
    std::set<Vertex> s(inst.sources.begin(), inst.sources.end());
    EXPECT_EQ(s.size(), 10u);
    EXPECT_FALSE(s.contains(inst.sink));
  }
}

TEST(Models, CornerInstanceRespectsRects) {
  sim::Rng rng{7};
  net::FieldSpec spec;
  spec.nodes = 200;
  const net::Topology topo{net::generate_uniform_field(spec, rng),
                           spec.radio_range_m};
  const net::Rect src_rect{0, 0, 80, 80};
  const net::Rect sink_rect{164, 164, 200, 200};
  const auto inst = make_corner_instance(topo, 5, src_rect, sink_rect, rng);
  EXPECT_EQ(inst.sources.size(), 5u);
  for (Vertex s : inst.sources) {
    EXPECT_TRUE(src_rect.contains(topo.position(s)));
  }
  EXPECT_TRUE(sink_rect.contains(topo.position(inst.sink)));
}

TEST(Models, CornerInstanceFallsBackWhenRectSparse) {
  // Only 3 nodes total; ask for 5 sources: fallback fills from nearest.
  sim::Rng rng{8};
  const net::Topology topo{{{10, 10}, {100, 100}, {190, 190}}, 40.0};
  const auto inst = make_corner_instance(topo, 2, {0, 0, 20, 20},
                                         {180, 180, 200, 200}, rng);
  EXPECT_EQ(inst.sources.size(), 2u);
  EXPECT_LT(inst.sink, topo.node_count());
}

TEST(GraphFromTopology, UnitWeightsAndSymmetry) {
  const net::Topology topo{{{0, 0}, {30, 0}, {60, 0}}, 40.0};
  const Graph g = graph_from_topology(topo);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  ASSERT_EQ(g.adjacent(1).size(), 2u);
  for (const auto& e : g.adjacent(1)) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

}  // namespace
}  // namespace wsn::trees
