// FlatMap/FlatSet equivalence against the std::map/std::set reference
// model over randomized op streams, iteration-order determinism, and the
// small companion containers (InlineVec, RingQueue).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/flat_map.hpp"
#include "sim/random.hpp"
#include "sim/ring_queue.hpp"

namespace wsn::sim {
namespace {

TEST(FlatMap, MatchesReferenceModelOverRandomOps) {
  // Interleaved insert/lookup/erase ops driven by a pinned stream; after
  // every op the flat map must agree with std::map on size, membership,
  // values, and full iteration sequence (both are key-sorted).
  Rng rng{77};
  FlatMap<int, std::uint64_t> fm;
  std::map<int, std::uint64_t> ref;

  constexpr int kOps = 20'000;
  for (int op = 0; op < kOps; ++op) {
    const int key = static_cast<int>(rng.uniform_int(0, 63));
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 35) {
      fm[key] = static_cast<std::uint64_t>(op);
      ref[key] = static_cast<std::uint64_t>(op);
    } else if (roll < 50) {
      const auto a = fm.try_emplace(key, static_cast<std::uint64_t>(op));
      const auto b = ref.try_emplace(key, static_cast<std::uint64_t>(op));
      ASSERT_EQ(a.second, b.second);
      ASSERT_EQ(a.first->second, b.first->second);
    } else if (roll < 60) {
      const auto a = fm.emplace(key, static_cast<std::uint64_t>(op));
      const auto b = ref.emplace(key, static_cast<std::uint64_t>(op));
      ASSERT_EQ(a.second, b.second);
      ASSERT_EQ(a.first->second, b.first->second);
    } else if (roll < 75) {
      ASSERT_EQ(fm.erase(key), ref.erase(key));
    } else if (roll < 90) {
      const auto a = fm.find(key);
      const auto b = ref.find(key);
      ASSERT_EQ(a != fm.end(), b != ref.end());
      if (b != ref.end()) {
        ASSERT_EQ(a->second, b->second);
      }
      ASSERT_EQ(fm.contains(key), ref.contains(key));
    } else {
      const std::uint64_t cutoff = static_cast<std::uint64_t>(
          rng.uniform_int(0, op > 0 ? op : 1));
      const auto removed = fm.erase_if(
          [cutoff](const auto& kv) { return kv.second < cutoff; });
      const auto ref_removed = std::erase_if(
          ref, [cutoff](const auto& kv) { return kv.second < cutoff; });
      ASSERT_EQ(removed, ref_removed);
    }
    ASSERT_EQ(fm.size(), ref.size());
    ASSERT_EQ(fm.empty(), ref.empty());
    // Same iteration sequence — FlatMap is a behavioural std::map drop-in.
    auto it = ref.begin();
    for (const auto& [k, v] : fm) {
      ASSERT_NE(it, ref.end());
      ASSERT_EQ(k, it->first);
      ASSERT_EQ(v, it->second);
      ++it;
    }
    ASSERT_EQ(it, ref.end());
  }
}

TEST(FlatMap, IterationIsDeterministicallyKeyOrdered) {
  // Whatever order keys arrive in, iteration is ascending — the property
  // the protocol's trajectory determinism rests on.
  Rng rng{5};
  std::vector<int> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(i);
  for (std::size_t i = keys.size(); i > 1; --i) {  // Fisher–Yates
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(keys[i - 1], keys[j]);
  }
  FlatMap<int, int> fm;
  for (int k : keys) fm[k] = k * 2;
  int expected = 0;
  for (const auto& [k, v] : fm) {
    EXPECT_EQ(k, expected);
    EXPECT_EQ(v, k * 2);
    ++expected;
  }
  EXPECT_EQ(expected, 200);
}

TEST(FlatMap, AtThrowsOnMissingKey) {
  FlatMap<int, int> fm;
  fm[3] = 30;
  EXPECT_EQ(fm.at(3), 30);
  EXPECT_THROW(fm.at(4), std::out_of_range);
}

TEST(FlatSet, MatchesReferenceModelOverRandomOps) {
  Rng rng{78};
  FlatSet<std::uint64_t> fs;
  std::set<std::uint64_t> ref;
  constexpr int kOps = 20'000;
  for (int op = 0; op < kOps; ++op) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 127));
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 50) {
      ASSERT_EQ(fs.insert(key).second, ref.insert(key).second);
    } else if (roll < 75) {
      ASSERT_EQ(fs.erase(key), ref.erase(key));
    } else {
      ASSERT_EQ(fs.contains(key), ref.contains(key));
    }
    ASSERT_EQ(fs.size(), ref.size());
    auto it = ref.begin();
    for (std::uint64_t k : fs) {
      ASSERT_NE(it, ref.end());
      ASSERT_EQ(k, *it);
      ++it;
    }
    ASSERT_EQ(it, ref.end());
  }
  fs.clear();
  EXPECT_TRUE(fs.empty());
}

TEST(InlineVec, HoldsUpToCapacityInline) {
  InlineVec<std::pair<int, int>, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) v.emplace_back(i, i * 10);
  EXPECT_EQ(v.size(), 4u);
  int i = 0;
  for (const auto& [a, b] : v) {
    EXPECT_EQ(a, i);
    EXPECT_EQ(b, i * 10);
    ++i;
  }
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back({9, 9});
  EXPECT_EQ(v[0].first, 9);
}

TEST(RingQueue, MatchesDequeOverRandomOpsAndWraps) {
  // FIFO equivalence vs std::deque across growth and wraparound, including
  // clear() mid-stream.
  Rng rng{79};
  RingQueue<std::uint64_t> rq;
  std::deque<std::uint64_t> ref;
  std::uint64_t next = 0;
  constexpr int kOps = 50'000;
  for (int op = 0; op < kOps; ++op) {
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 55 || ref.empty()) {
      rq.push_back(next);
      ref.push_back(next);
      ++next;
    } else if (roll < 98) {
      ASSERT_EQ(rq.front(), ref.front());
      rq.pop_front();
      ref.pop_front();
    } else {
      rq.clear();
      ref.clear();
    }
    ASSERT_EQ(rq.size(), ref.size());
    ASSERT_EQ(rq.empty(), ref.empty());
    if (!ref.empty()) {
      ASSERT_EQ(rq.front(), ref.front());
    }
  }
}

TEST(RingQueue, PopReleasesHeldResources) {
  // pop_front must drop the slot's payload immediately (a queued frame's
  // shared buffer must not linger until the slot is overwritten).
  RingQueue<std::shared_ptr<int>> rq;
  auto token = std::make_shared<int>(1);
  rq.push_back(token);
  EXPECT_EQ(token.use_count(), 2);
  rq.pop_front();
  EXPECT_EQ(token.use_count(), 1);
  rq.push_back(token);
  rq.clear();
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace wsn::sim
