// Protocol-level tests for directed diffusion (opportunistic baseline).
#include <gtest/gtest.h>

#include <memory>

#include "protocol_rig.hpp"

namespace wsn::diffusion {
namespace {

using core::Algorithm;
using wsn::testing::ProtocolRig;

// Chain: sink(0) - relay(1) - relay(2) - source(3), 30 m apart, 40 m range.
std::vector<net::Vec2> chain4() {
  return {{0, 0}, {30, 0}, {60, 0}, {90, 0}};
}

TEST(Diffusion, EndToEndDeliveryOnChain) {
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(30.0);

  EXPECT_TRUE(rig.node(3).is_active_source());
  EXPECT_GT(rig.collector().distinct_generated(), 40u);  // ~2/s for ~25 s
  // Nearly everything arrives on a static chain.
  EXPECT_GT(rig.collector().distinct_received(),
            rig.collector().distinct_generated() * 9 / 10);
}

TEST(Diffusion, GradientsFormTowardTheSink) {
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(20.0);

  // Relays hold a data gradient toward the sink side.
  auto g1 = rig.node(1).data_gradient_neighbors();
  ASSERT_EQ(g1.size(), 1u);
  EXPECT_EQ(g1[0], 0u);
  auto g2 = rig.node(2).data_gradient_neighbors();
  ASSERT_EQ(g2.size(), 1u);
  EXPECT_EQ(g2[0], 1u);
  auto g3 = rig.node(3).data_gradient_neighbors();
  ASSERT_EQ(g3.size(), 1u);
  EXPECT_EQ(g3[0], 2u);
  // The sink consumes; it has no data gradient out.
  EXPECT_TRUE(rig.node(0).data_gradient_neighbors().empty());
}

TEST(Diffusion, NoDetectionMeansNoSource) {
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.start_all();
  rig.run_for(15.0);
  EXPECT_FALSE(rig.node(3).is_active_source());
  EXPECT_EQ(rig.collector().distinct_generated(), 0u);
}

TEST(Diffusion, RegionMatchingGatesActivation) {
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  // Interest region covers only x < 50: node 3 (x=90) must stay inactive,
  // node 1 (x=30) becomes a source.
  rig.node(0).make_sink(net::Rect{0, -10, 50, 10});
  rig.node(1).set_detecting(true);
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(15.0);
  EXPECT_TRUE(rig.node(1).is_active_source());
  EXPECT_FALSE(rig.node(3).is_active_source());
}

TEST(Diffusion, InterestFloodsReachEveryNode) {
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.start_all();
  rig.run_for(10.0);
  // Node 3 (three hops out) heard interests: it holds a gradient toward 2.
  const auto view = rig.node(3).gradient_view();
  ASSERT_FALSE(view.empty());
  EXPECT_EQ(view[0].first, 2u);
}

TEST(Diffusion, DeliveryDelayIncludesAggregationDelay) {
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(30.0);
  // Delay must be positive and below a second on a 3-hop chain.
  EXPECT_GT(rig.collector().delay().mean(), 0.0);
  EXPECT_LT(rig.collector().delay().mean(), 1.0);
}

TEST(Diffusion, DiamondConvergesToSinglePath) {
  // Asymmetric diamond: source(3) -> {1,2} -> sink(0), with relay 2 placed
  // farther out so its copies consistently arrive second. Exploratory
  // rounds keep proposing fresh paths, but truncation must prune the
  // consistently-redundant one: over the whole run the network-wide data
  // transmissions stay near the single-path cost (2 hops per event), far
  // below the sustained-duplication cost (4). (In a *perfectly* symmetric
  // diamond the two relays alternate winning the MAC race and the paper's
  // window-based truncation rule cannot distinguish them — that tie is
  // broken here by geometry, as in any real field.)
  std::vector<net::Vec2> diamond{{0, 0}, {30, 14}, {32, -24}, {60, 0}};
  DiffusionParams params;
  params.exploratory_period = sim::Time::seconds(10.0);
  ProtocolRig rig{diamond, Algorithm::kOpportunistic, params};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(40.0);

  std::uint64_t data_sent = 0;
  for (net::NodeId i = 0; i < 4; ++i) data_sent += rig.node(i).stats().data_sent;
  const auto generated = rig.collector().distinct_generated();
  EXPECT_GT(generated, 60u);
  EXPECT_LT(data_sent, generated * 3);  // transients only, no sustained dup
  // A transient second gradient may exist right after a round; never more.
  EXPECT_LE(rig.node(3).data_gradient_neighbors().size(), 2u);
  EXPECT_GT(rig.collector().distinct_received(), generated * 8 / 10);
}

TEST(Diffusion, SurvivesRelayFailureViaRepair) {
  // Two parallel relays; kill the active one mid-run and expect delivery
  // to resume through the other.
  std::vector<net::Vec2> diamond{{0, 0}, {30, 20}, {30, -20}, {60, 0}};
  DiffusionParams params;
  params.exploratory_period = sim::Time::seconds(10.0);
  ProtocolRig rig{diamond, Algorithm::kOpportunistic, params};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(15.0);
  const auto before = rig.collector().distinct_received();
  EXPECT_GT(before, 0u);

  // Kill whichever relay carries the data right now.
  const auto path = rig.node(3).data_gradient_neighbors();
  ASSERT_FALSE(path.empty());
  rig.mac(path[0]).set_alive(false);
  rig.run_for(60.0);

  const auto after = rig.collector().distinct_received();
  // Data kept flowing after the failure (repair + re-advertisement).
  EXPECT_GT(after, before + 40u);
}

TEST(Diffusion, TwoSourcesBothDelivered) {
  // Y topology: sources 3 and 4 behind relay 2.
  std::vector<net::Vec2> y{{0, 0}, {30, 0}, {60, 0}, {90, 15}, {90, -15}};
  ProtocolRig rig{y, Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.node(4).set_detecting(true);
  rig.start_all();
  rig.run_for(30.0);

  EXPECT_GT(rig.collector().distinct_generated(), 80u);
  EXPECT_GT(rig.collector().distinct_received(),
            rig.collector().distinct_generated() * 9 / 10);
  // Relay 2 aggregates both sources' streams: it is an aggregation point
  // and its stats show data from two upstreams.
  EXPECT_GT(rig.node(2).stats().aggregates_received, 0u);
}

TEST(Diffusion, ItemFiltersSuppressForwarding) {
  // Y topology: sources 3 and 4 behind relay 2. A filter at the relay
  // suppresses source 4's items; the sink only sees source 3's.
  std::vector<net::Vec2> y{{0, 0}, {30, 0}, {60, 0}, {90, 15}, {90, -15}};
  ProtocolRig rig{y, Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.node(4).set_detecting(true);
  rig.node(2).add_item_filter(
      [](const DataItem& item) { return item.key.source != 4; });
  rig.start_all();
  rig.run_for(30.0);

  // Both sources generated, but only source 3's items got through.
  EXPECT_GT(rig.collector().distinct_generated(), 80u);
  EXPECT_GT(rig.collector().distinct_received(), 40u);
  EXPECT_LT(rig.collector().distinct_received(),
            rig.collector().distinct_generated() * 6 / 10);
}

TEST(Diffusion, DuplicateSuppressionCachesExpireByTtl) {
  // Duplicate suppression must be a *bounded* memory, not a permanent one:
  // a data msg id is suppressed inside cache_ttl but accepted again after
  // housekeeping purges it.
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.start_all();
  rig.run_for(10.0);  // let interests establish gradients

  auto inject_data = [&rig](MsgId msg_id, EventSeq seq) {
    auto msg = std::make_shared<DataMsg>();
    msg->msg_id = msg_id;
    msg->items.push_back(DataItem{{3, seq}, 0});
    net::Frame f;
    f.src = 2;
    f.dst = 1;
    f.bytes = 64;
    f.payload = std::move(msg);
    rig.node(1).mac_receive(f);
  };

  inject_data(7001, 1);
  EXPECT_EQ(rig.node(1).stats().aggregates_received, 1u);
  rig.run_for(12.0);
  inject_data(7001, 1);  // inside cache_ttl (10 s): suppressed
  EXPECT_EQ(rig.node(1).stats().aggregates_received, 1u);
  rig.run_for(40.0);     // past ttl + housekeeping sweep
  inject_data(7001, 2);  // same msg id, purged: accepted as fresh
  EXPECT_EQ(rig.node(1).stats().aggregates_received, 2u);
}

TEST(Diffusion, PurgedExploratoryIdRefloodsCorrectly) {
  // An exploratory record outlives two advertisement periods, then is
  // purged; if the same msg id ever reappears it must be treated as new —
  // re-cached and re-flooded — not silently swallowed by a stale entry.
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.start_all();
  rig.run_for(10.0);  // gradients exist, so node 1 forwards exploratories

  auto inject_expl = [&rig](MsgId msg_id) {
    auto msg = std::make_shared<ExploratoryMsg>();
    msg->msg_id = msg_id;
    msg->source = 3;
    msg->seq = 1;
    msg->gen_time_ns = 0;
    msg->cost_e = 1;
    net::Frame f;
    f.src = 2;
    f.dst = net::kBroadcast;
    f.bytes = 64;
    f.payload = std::move(msg);
    rig.node(1).mac_receive(f);
  };

  inject_expl(9001);
  rig.run_for(13.0);  // jittered re-flood fires
  EXPECT_EQ(rig.node(1).stats().exploratory_sent, 1u);
  inject_expl(9001);  // duplicate while cached: no second flood
  rig.run_for(16.0);
  EXPECT_EQ(rig.node(1).stats().exploratory_sent, 1u);

  // expl ttl = 2 × exploratory_period (50 s) + one sweep period; run well
  // past it so housekeeping has swept the record.
  rig.run_for(140.0);
  inject_expl(9001);
  rig.run_for(143.0);
  EXPECT_EQ(rig.node(1).stats().exploratory_sent, 2u);
}

TEST(Diffusion, StatsCountersMove) {
  ProtocolRig rig{chain4(), Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(20.0);
  const auto& sink_stats = rig.node(0).stats();
  EXPECT_GT(sink_stats.interests_sent, 2u);
  EXPECT_GT(sink_stats.reinforcements_sent, 0u);
  const auto& src_stats = rig.node(3).stats();
  EXPECT_GT(src_stats.exploratory_sent, 0u);
  EXPECT_GT(src_stats.data_sent, 20u);
}

}  // namespace
}  // namespace wsn::diffusion
