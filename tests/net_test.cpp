// Unit tests for geometry, topology and field generation.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/field.hpp"
#include "net/topology.hpp"
#include "net/vec2.hpp"
#include "sim/random.hpp"

namespace wsn::net {
namespace {

TEST(Vec2, BasicOps) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, a), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {4, 5}), 25.0);
  EXPECT_EQ((a + Vec2{1, 1}), (Vec2{4, 5}));
  EXPECT_EQ((a - Vec2{1, 1}), (Vec2{2, 3}));
  EXPECT_EQ((a * 2.0), (Vec2{6, 8}));
}

TEST(Rect, Contains) {
  const Rect r{0, 0, 80, 80};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({80, 80}));
  EXPECT_TRUE(r.contains({40, 40}));
  EXPECT_FALSE(r.contains({80.1, 40}));
  EXPECT_FALSE(r.contains({-0.1, 40}));
  EXPECT_DOUBLE_EQ(r.width(), 80.0);
  EXPECT_DOUBLE_EQ(r.height(), 80.0);
}

TEST(Rect, DistanceTo) {
  const Rect r{0, 0, 80, 80};
  EXPECT_DOUBLE_EQ(r.distance_to({40, 40}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.distance_to({80, 80}), 0.0);   // on the corner
  EXPECT_DOUBLE_EQ(r.distance_to({90, 40}), 10.0);  // right of it
  EXPECT_DOUBLE_EQ(r.distance_to({40, -5}), 5.0);   // below it
  EXPECT_DOUBLE_EQ(r.distance_to({83, 84}), 5.0);   // diagonal (3,4,5)
}

TEST(Vec2, DistanceToSegment) {
  // Horizontal segment from (0,0) to (10,0).
  EXPECT_DOUBLE_EQ(distance_to_segment({5, 3}, {0, 0}, {10, 0}), 3.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({-3, 4}, {0, 0}, {10, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({13, 4}, {0, 0}, {10, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({5, 0}, {0, 0}, {10, 0}), 0.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(distance_to_segment({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(Topology, LineNeighbors) {
  // Nodes at x = 0, 30, 60, 90 with range 40: chain adjacency.
  Topology t{{{0, 0}, {30, 0}, {60, 0}, {90, 0}}, 40.0};
  EXPECT_EQ(t.node_count(), 4u);
  ASSERT_EQ(t.neighbors(0).size(), 1u);
  EXPECT_EQ(t.neighbors(0)[0], 1u);
  ASSERT_EQ(t.neighbors(1).size(), 2u);
  EXPECT_EQ(t.neighbors(1)[0], 0u);
  EXPECT_EQ(t.neighbors(1)[1], 2u);
  EXPECT_TRUE(t.in_range(0, 1));
  EXPECT_FALSE(t.in_range(0, 2));
  EXPECT_FALSE(t.in_range(2, 2));  // never its own neighbour
}

TEST(Topology, RangeIsExclusiveAtBoundary) {
  Topology t{{{0, 0}, {40, 0}}, 40.0};
  EXPECT_FALSE(t.in_range(0, 1));  // strictly-less-than range
  EXPECT_TRUE(t.neighbors(0).empty());
}

TEST(Topology, ConnectedAndHops) {
  Topology chain{{{0, 0}, {30, 0}, {60, 0}, {90, 0}}, 40.0};
  EXPECT_TRUE(chain.connected());
  EXPECT_EQ(chain.hop_distance(0, 3), 3);
  EXPECT_EQ(chain.hop_distance(0, 0), 0);

  Topology split{{{0, 0}, {30, 0}, {200, 0}}, 40.0};
  EXPECT_FALSE(split.connected());
  EXPECT_EQ(split.hop_distance(0, 2), -1);
}

TEST(Topology, AverageDegree) {
  Topology t{{{0, 0}, {10, 0}, {20, 0}}, 15.0};
  // 0-1 and 1-2 in range; 0-2 not. Degrees 1,2,1.
  EXPECT_DOUBLE_EQ(t.average_degree(), 4.0 / 3.0);
}

TEST(Topology, AudibleIsSupersetOfNeighbors) {
  Topology t{{{0, 0}, {50, 0}, {100, 0}}, 40.0, 88.0};
  // 0-1: 50m → audible only. 0-2: 100m → neither.
  EXPECT_TRUE(t.neighbors(0).empty());
  ASSERT_EQ(t.audible(0).size(), 1u);
  EXPECT_EQ(t.audible(0)[0], 1u);
  ASSERT_EQ(t.audible(1).size(), 2u);
  EXPECT_DOUBLE_EQ(t.carrier_sense_range(), 88.0);
}

TEST(Topology, DefaultCarrierSenseEqualsRange) {
  Topology t{{{0, 0}, {30, 0}}, 40.0};
  EXPECT_DOUBLE_EQ(t.carrier_sense_range(), 40.0);
  EXPECT_EQ(t.audible(0).size(), t.neighbors(0).size());
}

// Property: grid-accelerated neighbour lists match the O(n²) definition.
class TopologyProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TopologyProperty, MatchesBruteForce) {
  const auto [n, seed] = GetParam();
  sim::Rng rng{seed};
  net::FieldSpec spec;
  spec.nodes = n;
  const auto pts = generate_uniform_field(spec, rng);
  const Topology t{pts, spec.radio_range_m, spec.carrier_sense_range_m};

  for (NodeId i = 0; i < n; ++i) {
    std::vector<NodeId> expected;
    std::vector<NodeId> expected_audible;
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = distance(pts[i], pts[j]);
      if (d < spec.radio_range_m) expected.push_back(j);
      if (d < spec.carrier_sense_range_m) expected_audible.push_back(j);
    }
    const auto got = t.neighbors(i);
    ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), expected)
        << "node " << i;
    // audible(i) is partitioned, not globally sorted: the decodable prefix
    // is exactly neighbors(i), the carrier-sense-only tail is sorted by id,
    // and the whole list as a set matches the brute-force definition.
    const auto got_a = t.audible(i);
    ASSERT_EQ(t.decodable_prefix(i), got.size()) << "node " << i;
    ASSERT_EQ(std::vector<NodeId>(got_a.begin(),
                                  got_a.begin() +
                                      static_cast<std::ptrdiff_t>(got.size())),
              expected)
        << "node " << i;
    ASSERT_TRUE(std::is_sorted(
        got_a.begin() + static_cast<std::ptrdiff_t>(got.size()), got_a.end()))
        << "node " << i;
    std::vector<NodeId> got_a_sorted(got_a.begin(), got_a.end());
    std::sort(got_a_sorted.begin(), got_a_sorted.end());
    ASSERT_EQ(got_a_sorted, expected_audible) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopologyProperty,
    ::testing::Combine(::testing::Values<std::size_t>(10, 50, 150),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Field, UniformFieldInsideSquare) {
  sim::Rng rng{21};
  FieldSpec spec;
  spec.nodes = 500;
  const auto pts = generate_uniform_field(spec, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, spec.side_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, spec.side_m);
  }
}

TEST(Field, ConnectedFieldIsConnectedAtPaperDensities) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Rng rng{seed};
    FieldSpec spec;
    spec.nodes = 150;  // ≈19 neighbours: connected w.h.p.
    const auto pts = generate_connected_field(spec, rng);
    EXPECT_TRUE(Topology(pts, spec.radio_range_m).connected())
        << "seed " << seed;
  }
}

TEST(Field, PaperDensityRangeMatchesNeighbourCounts) {
  // The paper: 50..350 nodes ↔ about 6 to 43 neighbours on average.
  sim::Rng rng{2};
  FieldSpec lo;
  lo.nodes = 50;
  const Topology tlo{generate_uniform_field(lo, rng), lo.radio_range_m};
  EXPECT_NEAR(tlo.average_degree(), 6.0, 3.0);

  FieldSpec hi;
  hi.nodes = 350;
  const Topology thi{generate_uniform_field(hi, rng), hi.radio_range_m};
  EXPECT_NEAR(thi.average_degree(), 43.0, 10.0);
}

}  // namespace
}  // namespace wsn::net
