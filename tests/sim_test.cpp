// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include <string>

#include "sim/event_queue.hpp"
#include "sim/logger.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace wsn::sim {
namespace {

TEST(Time, ArithmeticAndConversions) {
  EXPECT_EQ(Time::seconds(1.5).as_nanos(), 1'500'000'000);
  EXPECT_EQ(Time::millis(2).as_nanos(), 2'000'000);
  EXPECT_EQ(Time::micros(3).as_nanos(), 3'000);
  EXPECT_EQ((Time::seconds(1.0) + Time::millis(500)).as_seconds(), 1.5);
  EXPECT_EQ((Time::seconds(2.0) - Time::seconds(0.5)).as_seconds(), 1.5);
  EXPECT_EQ(Time::millis(100) * 3, Time::millis(300));
  EXPECT_EQ(Time::seconds(1.0).scaled(0.25), Time::millis(250));
  EXPECT_LT(Time::zero(), Time::nanos(1));
  EXPECT_EQ(Time::max().as_nanos(), std::numeric_limits<std::int64_t>::max());
}

TEST(Time, ToString) {
  EXPECT_EQ(Time::seconds(1.25).to_string(), "1.250000s");
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::millis(30), [&] { order.push_back(3); });
  q.schedule(Time::millis(10), [&] { order.push_back(1); });
  q.schedule(Time::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::millis(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(Time::millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.pending(h));
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.pending(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnFired) {
  EventQueue q;
  auto h = q.schedule(Time::millis(1), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // second cancel is a no-op
  auto h2 = q.schedule(Time::millis(2), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(h2));  // already fired
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, PendingOnDefaultHandleIsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.pending(EventHandle{}));
  q.schedule(Time::millis(1), [] {});
  EXPECT_FALSE(q.pending(EventHandle{}));  // unrelated pending event
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, CancelAfterFireIsSafeAcrossReuse) {
  // A handle whose event already fired must stay dead: cancelling it is a
  // no-op and must never affect later events (handles are never reused).
  EventQueue q;
  int fired = 0;
  auto h1 = q.schedule(Time::millis(1), [&] { ++fired; });
  q.pop().fn();
  EXPECT_FALSE(q.pending(h1));
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_FALSE(q.cancel(h1));  // double-cancel after fire

  auto h2 = q.schedule(Time::millis(2), [&] { ++fired; });
  EXPECT_FALSE(q.cancel(h1));  // stale handle cannot hit h2
  EXPECT_TRUE(q.pending(h2));
  q.pop().fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DoubleCancelThenScheduleKeepsQueueConsistent) {
  EventQueue q;
  auto h = q.schedule(Time::millis(3), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
  auto h2 = q.schedule(Time::millis(1), [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), Time::millis(1));
  EXPECT_TRUE(q.cancel(h2));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(Time::millis(1), [] {});
  q.schedule(Time::millis(5), [] {});
  q.cancel(h);
  EXPECT_EQ(q.next_time(), Time::millis(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearEmptiesEverything) {
  EventQueue q;
  q.schedule(Time::millis(1), [] {});
  q.schedule(Time::millis(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = Time::zero();
  sim.schedule_in(Time::seconds(1.0), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, Time::seconds(1.0));
  EXPECT_EQ(sim.events_dispatched(), 1u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Time::seconds(1.0), [&] { ++fired; });
  sim.schedule_in(Time::seconds(3.0), [&] { ++fired; });
  sim.run_until(Time::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::seconds(2.0));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(Time::millis(1), recurse);
  };
  sim.schedule_in(Time::millis(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), Time::millis(5));
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Time::millis(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(Time::millis(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes after stop
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastSchedulesClampToNow) {
  Simulator sim;
  sim.schedule_in(Time::seconds(1.0), [] {});
  sim.run();
  Time seen = Time::zero();
  sim.schedule_at(Time::millis(1), [&] { seen = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(seen, Time::seconds(1.0));
}

TEST(Timer, ArmFiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.arm(Time::millis(10));
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPrevious) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.arm(Time::millis(10));
  t.arm(Time::millis(20));  // replaces
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::millis(20));
}

TEST(Timer, ArmIfIdleKeepsEarlierDeadline) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.arm(Time::millis(10));
  t.arm_if_idle(Time::millis(50));  // ignored: already armed
  sim.run();
  EXPECT_EQ(sim.now(), Time::millis(10));
  EXPECT_EQ(fired, 1);
}

TEST(Timer, CancelPreventsExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.arm(Time::millis(10));
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmFromCallbackWorks) {
  Simulator sim;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t{sim, [&] {
            if (++fired < 3) tp->arm(Time::millis(5));
          }};
  tp = &t;
  t.arm(Time::millis(5));
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), Time::millis(15));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng parent{7};
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  Rng c1_again = parent.fork(0);
  EXPECT_EQ(c1.next(), c1_again.next());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next() == c2.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformBounds) {
  Rng r{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r{11};
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) ++counts[static_cast<std::size_t>(r.uniform_int(0, 5))];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r{5};
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, JitterWithinBound) {
  Rng r{9};
  for (int i = 0; i < 1000; ++i) {
    const Time j = r.jitter(Time::millis(10));
    EXPECT_GE(j, Time::zero());
    EXPECT_LT(j, Time::millis(10));
  }
  EXPECT_EQ(r.jitter(Time::zero()), Time::zero());
}

TEST(Rng, SampleIndicesDistinct) {
  Rng r{13};
  auto s = r.sample_indices(100, 20);
  ASSERT_EQ(s.size(), 20u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r{17};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// Pinned streams: these exact values are part of the reproducibility
// contract. A refactor that changes them silently invalidates every seeded
// experiment, so any intentional change must bump seeds project-wide and
// update these constants deliberately.
TEST(Rng, RawStreamIsPinned) {
  Rng r{0x5EEDF00DULL};
  EXPECT_EQ(r.next(), 0x7c873a5e096e5982ULL);
  EXPECT_EQ(r.next(), 0xafa8a941fb322560ULL);
  EXPECT_EQ(r.next(), 0x901e1d55271b5116ULL);
  EXPECT_EQ(r.next(), 0xc0402398799c6825ULL);
}

TEST(Rng, FisherYatesShuffleOrderIsPinned) {
  Rng r{0x5EEDF00DULL};
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  r.shuffle(v);
  EXPECT_EQ(v, (std::vector<int>{7, 0, 3, 5, 9, 1, 2, 8, 6, 4}));
}

TEST(Rng, SampleIndicesOrderIsPinned) {
  Rng r{0x5EEDF00DULL};
  EXPECT_EQ(r.sample_indices(10, 4),
            (std::vector<std::size_t>{4, 7, 8, 5}));
}

TEST(Rng, UniformIntSequenceIsPinned) {
  Rng r{123};
  const std::vector<std::int64_t> expect{97, 98, 67, 30, 94, 54};
  for (std::int64_t e : expect) EXPECT_EQ(r.uniform_int(0, 99), e);
}

// Property: a random schedule pops back in nondecreasing time order even
// with interleaved cancellations.
class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueProperty, RandomScheduleIsOrdered) {
  Rng rng{GetParam()};
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 500; ++i) {
    handles.push_back(
        q.schedule(Time::nanos(rng.uniform_int(0, 1000)), [] {}));
  }
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    cancelled += q.cancel(handles[i]) ? 1 : 0;
  }
  EXPECT_EQ(q.size(), 500 - cancelled);
  Time last = Time::zero();
  std::size_t popped = 0;
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.at, last);
    last = f.at;
    ++popped;
  }
  EXPECT_EQ(popped, 500 - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = Logger::level();
    Logger::set_level(LogLevel::kInfo);
  }
  void TearDown() override { Logger::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST_F(LoggerTest, FormatsArgumentsPrintfStyle) {
  ::testing::internal::CaptureStderr();
  Logger::log(LogLevel::kInfo, Time::seconds(1.5), "test", "node %u cost %.2f",
              7u, 3.125);
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("node 7 cost 3.12"), std::string::npos) << out;
  EXPECT_NE(out.find("1.500000"), std::string::npos) << out;
}

TEST_F(LoggerTest, TruncatedLinesEndWithAVisibleMarker) {
  const std::string big(700, 'x');
  ::testing::internal::CaptureStderr();
  Logger::log(LogLevel::kInfo, Time::zero(), "test", "head %s", big.c_str());
  const std::string out = ::testing::internal::GetCapturedStderr();
  // The 512-byte line buffer cuts the message; the tail must carry the
  // UTF-8 "…" marker so truncation is visible, and nothing past the buffer
  // may leak through.
  EXPECT_NE(out.find("\xe2\x80\xa6"), std::string::npos) << out;
  EXPECT_LT(out.size(), 600u);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
}

TEST_F(LoggerTest, ShortLinesCarryNoMarker) {
  ::testing::internal::CaptureStderr();
  Logger::log(LogLevel::kInfo, Time::zero(), "test", "fits fine: %d", 42);
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("fits fine: 42"), std::string::npos);
  EXPECT_EQ(out.find("\xe2\x80\xa6"), std::string::npos) << out;
}

TEST_F(LoggerTest, DisabledLevelsEmitNothing) {
  ::testing::internal::CaptureStderr();
  Logger::log(LogLevel::kDebug, Time::zero(), "test", "below the level");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace wsn::sim
