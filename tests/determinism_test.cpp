// Determinism harness: two runs with the same seed must be bit-identical.
//
// This is the cheap nondeterminism tripwire later perf PRs build against:
// any hash-order leak, uninitialised read, or wall-clock dependency that
// reaches the metrics shows up as a digest mismatch here.
#include <gtest/gtest.h>

#include <cstdint>

#include "scenario/experiment.hpp"
#include "stats/digest.hpp"

namespace wsn {
namespace {

using scenario::ExperimentConfig;
using scenario::RunResult;
using scenario::run_experiment;

/// Digest of everything a run reports: headline metrics, per-node energy,
/// traffic counters, protocol counters, and the final tree.
std::uint64_t digest_run(const RunResult& res) {
  stats::Digest d;
  d.add(stats::digest_of(res.metrics));
  d.add(res.average_degree);
  for (net::NodeId s : res.sources) d.add(std::uint64_t{s});
  for (net::NodeId s : res.sinks) d.add(std::uint64_t{s});
  for (double j : res.node_energy_joules) d.add(j);
  d.add(res.energy_max_node_joules);
  d.add(res.energy_mean_node_joules);
  d.add(res.energy_stddev_node_joules);
  d.add(res.frames_sent);
  d.add(res.bytes_sent);
  d.add(res.arrivals_corrupted);
  d.add(res.drops);
  d.add(res.protocol.interests_sent);
  d.add(res.protocol.exploratory_sent);
  d.add(res.protocol.data_sent);
  d.add(res.protocol.icm_sent);
  d.add(res.protocol.reinforcements_sent);
  d.add(res.protocol.negatives_sent);
  d.add(res.protocol.repairs_attempted);
  d.add(res.protocol.aggregates_received);
  for (const auto& [a, b] : res.tree_edges) {
    d.add(std::uint64_t{a});
    d.add(std::uint64_t{b});
  }
  return d.value();
}

ExperimentConfig mid_size_config(core::Algorithm alg, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.field.nodes = 150;
  cfg.algorithm = alg;
  cfg.duration = sim::Time::seconds(120.0);
  cfg.seed = seed;
  return cfg;
}

TEST(Determinism, SameSeedBitIdenticalGreedy) {
  const ExperimentConfig cfg = mid_size_config(core::Algorithm::kGreedy, 42);
  const RunResult a = run_experiment(cfg);
  const RunResult b = run_experiment(cfg);
  ASSERT_EQ(a.node_energy_joules.size(), b.node_energy_joules.size());
  EXPECT_EQ(stats::digest_of(a.metrics), stats::digest_of(b.metrics));
  EXPECT_EQ(digest_run(a), digest_run(b));
}

TEST(Determinism, SameSeedBitIdenticalOpportunistic) {
  const ExperimentConfig cfg =
      mid_size_config(core::Algorithm::kOpportunistic, 42);
  const RunResult a = run_experiment(cfg);
  const RunResult b = run_experiment(cfg);
  EXPECT_EQ(digest_run(a), digest_run(b));
}

TEST(Determinism, SameSeedBitIdenticalUnderFailures) {
  // Node churn exercises the repair path, where hash-order bugs would hide.
  ExperimentConfig cfg = mid_size_config(core::Algorithm::kGreedy, 7);
  cfg.failures.enabled = true;
  const RunResult a = run_experiment(cfg);
  const RunResult b = run_experiment(cfg);
  EXPECT_EQ(digest_run(a), digest_run(b));
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the digest actually discriminates.
  const RunResult a =
      run_experiment(mid_size_config(core::Algorithm::kGreedy, 1));
  const RunResult b =
      run_experiment(mid_size_config(core::Algorithm::kGreedy, 2));
  EXPECT_NE(digest_run(a), digest_run(b));
}

TEST(Determinism, DigestIsOrderSensitive) {
  stats::Digest d1;
  d1.add(std::uint64_t{1});
  d1.add(std::uint64_t{2});
  stats::Digest d2;
  d2.add(std::uint64_t{2});
  d2.add(std::uint64_t{1});
  EXPECT_NE(d1.value(), d2.value());
}

}  // namespace
}  // namespace wsn
