// Shared fixture for protocol-level tests: builds a full stack
// (topology → channel → MACs → diffusion nodes → metrics) over explicit
// node positions so tests can craft exact topologies.
#pragma once

#include <memory>
#include <vector>

#include "core/algorithm.hpp"
#include "mac/channel.hpp"
#include "mac/csma_mac.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace wsn::testing {

class ProtocolRig {
 public:
  // `with_metrics = false` builds the stack without the MetricsCollector
  // hook — used by the allocation-freeness test, where the per-packet
  // bookkeeping of the collector itself would count against the protocol.
  ProtocolRig(std::vector<net::Vec2> positions, core::Algorithm alg,
              diffusion::DiffusionParams params = {}, double range = 40.0,
              std::uint64_t seed = 1, bool with_metrics = true)
      : topo_{std::move(positions), range},
        channel_{sim_, topo_},
        params_{params} {
    sim::Rng master{seed};
    for (net::NodeId i = 0; i < topo_.node_count(); ++i) {
      macs_.push_back(std::make_unique<mac::CsmaMac>(
          sim_, channel_, i, phy_, energy_, master.fork(100 + i)));
      nodes_.push_back(core::make_diffusion_node(
          alg, sim_, *macs_[i], topo_.position(i), params_,
          master.fork(500 + i), with_metrics ? &collector_ : nullptr));
    }
  }

  void start_all() {
    for (auto& n : nodes_) n->start();
  }

  diffusion::DiffusionNode& node(net::NodeId i) { return *nodes_[i]; }
  mac::CsmaMac& mac(net::NodeId i) { return *macs_[i]; }
  sim::Simulator& sim() { return sim_; }
  stats::MetricsCollector& collector() { return collector_; }
  const net::Topology& topology() const { return topo_; }

  void run_for(double seconds) { sim_.run_until(sim::Time::seconds(seconds)); }

  /// Everything-field rect for make_sink (covers negative coordinates too).
  [[nodiscard]] net::Rect whole_field() const {
    return {-10000.0, -10000.0, 10000.0, 10000.0};
  }

 private:
  sim::Simulator sim_;
  net::Topology topo_;
  mac::Channel channel_;
  mac::PhyParams phy_;
  mac::EnergyParams energy_;
  diffusion::DiffusionParams params_;
  stats::MetricsCollector collector_;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs_;
  std::vector<std::unique_ptr<diffusion::DiffusionNode>> nodes_;
};

}  // namespace wsn::testing
