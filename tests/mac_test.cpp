// Unit tests for the wireless channel, CSMA/CA MAC and energy model.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "mac/channel.hpp"
#include "mac/csma_mac.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace wsn::mac {
namespace {

struct TestUser final : MacUser {
  std::vector<net::Frame> received;
  int failed = 0;
  int succeeded = 0;

  void mac_receive(const net::Frame& f) override { received.push_back(f); }
  void mac_send_failed(const net::Frame&) override { ++failed; }
  void mac_send_succeeded(const net::Frame&) override { ++succeeded; }
};

/// Small fixture: a topology with one MAC + user per node.
class MacRig {
 public:
  MacRig(std::vector<net::Vec2> positions, double range, double cs_range = 0.0)
      : topo_{std::move(positions), range, cs_range}, channel_{sim_, topo_} {
    for (net::NodeId i = 0; i < topo_.node_count(); ++i) {
      users_.push_back(std::make_unique<TestUser>());
      macs_.push_back(std::make_unique<CsmaMac>(sim_, channel_, i, phy_,
                                                energy_, sim::Rng{100 + i}));
      macs_.back()->set_user(users_.back().get());
    }
  }

  CsmaMac& mac(net::NodeId i) { return *macs_[i]; }
  TestUser& user(net::NodeId i) { return *users_[i]; }
  sim::Simulator& sim() { return sim_; }
  const PhyParams& phy() const { return phy_; }
  const EnergyParams& energy() const { return energy_; }

  static net::Frame frame(net::NodeId dst, std::uint32_t bytes = 64) {
    net::Frame f;
    f.dst = dst;
    f.bytes = bytes;
    return f;
  }

 private:
  sim::Simulator sim_;
  net::Topology topo_;
  Channel channel_;
  PhyParams phy_;
  EnergyParams energy_;
  std::vector<std::unique_ptr<TestUser>> users_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
};

TEST(PhyParams, AirtimeMath) {
  PhyParams phy;
  // 64B payload + 28B header = 92B = 736 bits at 1.6 Mbps = 460 µs + preamble.
  const auto t = phy.frame_airtime(64);
  EXPECT_EQ(t.as_nanos(), (phy.preamble + sim::Time::micros(460)).as_nanos());
  EXPECT_GT(phy.ack_airtime(), phy.preamble);
  EXPECT_GT(phy.ack_timeout(), phy.ack_airtime());
}

TEST(Mac, UnicastDeliveredAndAcked) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.mac(0).send(MacRig::frame(1));
  rig.sim().run();
  ASSERT_EQ(rig.user(1).received.size(), 1u);
  EXPECT_EQ(rig.user(1).received[0].src, 0u);
  EXPECT_EQ(rig.user(1).received[0].bytes, 64u);
  EXPECT_EQ(rig.user(0).succeeded, 1);
  EXPECT_EQ(rig.user(0).failed, 0);
  EXPECT_EQ(rig.mac(0).stats().frames_sent, 1u);
  EXPECT_EQ(rig.mac(1).stats().acks_sent, 1u);
}

TEST(Mac, BroadcastReachesOnlyNodesInRange) {
  MacRig rig{{{0, 0}, {20, 0}, {39, 0}, {120, 0}}, 40.0};
  rig.mac(0).send(MacRig::frame(net::kBroadcast));
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 1u);
  EXPECT_EQ(rig.user(2).received.size(), 1u);
  EXPECT_EQ(rig.user(3).received.size(), 0u);
  // No ACKs for broadcast.
  EXPECT_EQ(rig.mac(1).stats().acks_sent, 0u);
  EXPECT_EQ(rig.user(0).succeeded, 0);
}

TEST(Mac, OverheardUnicastIsNotDelivered) {
  MacRig rig{{{0, 0}, {20, 0}, {30, 0}}, 40.0};
  rig.mac(0).send(MacRig::frame(1));
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 1u);
  EXPECT_EQ(rig.user(2).received.size(), 0u);  // heard but not for it
}

TEST(Mac, HiddenTerminalBroadcastsCollideAtTheMiddle) {
  // 0 and 2 cannot hear each other; both transmit at t=0 → 1 decodes nothing.
  MacRig rig{{{0, 0}, {35, 0}, {70, 0}}, 40.0};
  rig.mac(0).send(MacRig::frame(net::kBroadcast));
  rig.mac(2).send(MacRig::frame(net::kBroadcast));
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 0u);
  EXPECT_GE(rig.mac(1).stats().arrivals_corrupted, 2u);
}

TEST(Mac, CarrierSenseSerializesNeighbours) {
  // 0 and 1 hear each other; both broadcast "simultaneously": the second
  // defers, so 2 receives both frames cleanly.
  MacRig rig{{{0, 0}, {10, 0}, {30, 0}}, 40.0};
  rig.mac(0).send(MacRig::frame(net::kBroadcast));
  rig.mac(1).send(MacRig::frame(net::kBroadcast));
  rig.sim().run();
  EXPECT_EQ(rig.user(2).received.size(), 2u);
}

TEST(Mac, UnicastToDeadNodeFailsAfterRetries) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.mac(1).set_alive(false);
  rig.mac(0).send(MacRig::frame(1));
  rig.sim().run();
  EXPECT_EQ(rig.user(0).failed, 1);
  EXPECT_EQ(rig.mac(0).stats().drops_retry_exhausted, 1u);
  EXPECT_EQ(rig.mac(0).stats().retries,
            static_cast<std::uint64_t>(rig.phy().max_retries));
  EXPECT_EQ(rig.user(1).received.size(), 0u);
}

TEST(Mac, QueueOverflowDrops) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  for (std::size_t i = 0; i < rig.phy().queue_limit + 5; ++i) {
    rig.mac(0).send(MacRig::frame(1));
  }
  EXPECT_EQ(rig.mac(0).stats().drops_queue_full, 5u);
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), rig.phy().queue_limit);
}

TEST(Mac, DeadSenderDropsOutgoing) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.mac(0).set_alive(false);
  rig.mac(0).send(MacRig::frame(1));
  rig.sim().run();
  EXPECT_EQ(rig.mac(0).stats().frames_sent, 0u);
  EXPECT_EQ(rig.user(1).received.size(), 0u);
}

TEST(Mac, MidFlightAbortCorruptsReception) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.mac(0).send(MacRig::frame(net::kBroadcast, 1000));  // long frame
  // Kill the sender while the frame is in the air.
  rig.sim().schedule_in(sim::Time::micros(300),
                        [&] { rig.mac(0).set_alive(false); });
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 0u);
}

TEST(Energy, IdleOnlyAccumulatesIdlePower) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.sim().schedule_in(sim::Time::seconds(10.0), [] {});
  rig.sim().run();
  const double j = rig.mac(0).energy_joules(rig.sim().now());
  EXPECT_NEAR(j, rig.energy().idle_watts * 10.0, 1e-9);
  EXPECT_NEAR(rig.mac(0).active_energy_joules(rig.sim().now()), 0.0, 1e-12);
}

TEST(Energy, TransmitAndReceiveAreCharged) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.mac(0).send(MacRig::frame(net::kBroadcast));
  rig.sim().schedule_in(sim::Time::seconds(1.0), [] {});
  rig.sim().run();
  const double airtime = rig.phy().frame_airtime(64).as_seconds();
  const double tx_extra = (rig.energy().tx_watts - rig.energy().idle_watts) * airtime;
  const double rx_extra = (rig.energy().rx_watts - rig.energy().idle_watts) * airtime;

  const double sender = rig.mac(0).energy_joules(rig.sim().now());
  const double receiver = rig.mac(1).energy_joules(rig.sim().now());
  const double baseline = rig.energy().idle_watts * 1.0;
  EXPECT_NEAR(sender, baseline + tx_extra, 1e-5);
  EXPECT_NEAR(receiver, baseline + rx_extra, 1e-5);
  EXPECT_NEAR(rig.mac(0).active_energy_joules(rig.sim().now()),
              rig.energy().tx_watts * airtime, 1e-5);
}

TEST(Energy, DeadNodeDrawsNothing) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.mac(0).set_alive(false);
  rig.sim().schedule_in(sim::Time::seconds(5.0), [] {});
  rig.sim().run();
  EXPECT_NEAR(rig.mac(0).energy_joules(rig.sim().now()), 0.0, 1e-12);
}

TEST(Energy, CarrierSenseOnlyArrivalBurnsReceivePower) {
  // Node 1 at 50 m: audible (cs 88 m) but cannot decode (range 40 m).
  MacRig rig{{{0, 0}, {50, 0}}, 40.0, 88.0};
  rig.mac(0).send(MacRig::frame(net::kBroadcast));
  rig.sim().schedule_in(sim::Time::seconds(1.0), [] {});
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 0u);
  const double airtime = rig.phy().frame_airtime(64).as_seconds();
  EXPECT_NEAR(rig.mac(1).active_energy_joules(rig.sim().now()),
              rig.energy().rx_watts * airtime, 1e-5);
}

TEST(Mac, RevivedNodeWorksAgain) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  rig.mac(1).set_alive(false);
  rig.mac(1).set_alive(true);
  rig.mac(0).send(MacRig::frame(1));
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 1u);
}

TEST(Mac, ManyUnicastsAllDelivered) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  for (int i = 0; i < 50; ++i) rig.mac(0).send(MacRig::frame(1));
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 50u);
  EXPECT_EQ(rig.user(0).succeeded, 50);
}

// Fuzz: random traffic over a random topology; structural invariants must
// hold regardless of collisions, retries and queue drops.
class MacFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MacFuzz, InvariantsUnderRandomTraffic) {
  sim::Rng rng{GetParam()};
  std::vector<net::Vec2> pts;
  const std::size_t n = 8;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 90.0), rng.uniform(0.0, 90.0)});
  }
  MacRig rig{pts, 40.0, 88.0};
  std::uint64_t submitted = 0;
  for (int burst = 0; burst < 20; ++burst) {
    rig.sim().schedule_in(sim::Time::millis(rng.uniform_int(0, 500)), [&rig,
                                                                       &rng,
                                                                       n] {
      const auto src = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
      const auto dst_roll = rng.uniform_int(0, static_cast<std::int64_t>(n));
      const net::NodeId dst = dst_roll == static_cast<std::int64_t>(n)
                                  ? net::kBroadcast
                                  : static_cast<net::NodeId>(dst_roll);
      if (dst != src) rig.mac(src).send(MacRig::frame(dst, 64));
    });
    ++submitted;
  }
  rig.sim().run();

  std::uint64_t sent = 0, delivered = 0, drops = 0;
  for (net::NodeId i = 0; i < n; ++i) {
    const auto& st = rig.mac(i).stats();
    sent += st.frames_sent;
    delivered += st.frames_delivered;
    drops += st.drops_queue_full + st.drops_retry_exhausted;
    // Energy is always within the physical envelope.
    const double j = rig.mac(i).energy_joules(rig.sim().now());
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, rig.energy().tx_watts * rig.sim().now().as_seconds() + 1e-9);
  }
  // Every submission was either put on the air (possibly several times,
  // counting retries) or dropped.
  EXPECT_LE(drops, submitted);
  EXPECT_GT(sent + drops, 0u);
  // Nothing is delivered that was never transmitted.
  EXPECT_LE(delivered, sent * n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacFuzz, ::testing::Range<std::uint64_t>(1, 9));

TEST(Mac, BidirectionalTrafficCompletes) {
  MacRig rig{{{0, 0}, {20, 0}}, 40.0};
  for (int i = 0; i < 20; ++i) {
    rig.mac(0).send(MacRig::frame(1));
    rig.mac(1).send(MacRig::frame(0));
  }
  rig.sim().run();
  EXPECT_EQ(rig.user(1).received.size(), 20u);
  EXPECT_EQ(rig.user(0).received.size(), 20u);
}

/// Records the order in which the channel's batched sweeps hit this radio.
class RecorderMac final : public MacBase {
 public:
  RecorderMac(sim::Simulator& sim, Channel& channel, net::NodeId id,
              const EnergyParams& energy,
              std::vector<std::pair<net::NodeId, bool>>& starts,
              std::vector<net::NodeId>& ends)
      : MacBase{sim, channel, id, energy}, starts_{&starts}, ends_{&ends} {}

  void send(net::Frame /*frame*/) override {}
  void set_alive(bool alive) override { alive_ = alive; }
  void arrival_start(const TransmissionPtr& /*tx*/, bool decodable) override {
    starts_->emplace_back(id(), decodable);
  }
  void arrival_end(const TransmissionPtr& /*tx*/) override {
    ends_->push_back(id());
  }

 private:
  std::vector<std::pair<net::NodeId, bool>>* starts_;
  std::vector<net::NodeId>* ends_;
};

TEST(Channel, BatchedArrivalsFollowAudibleOrderAndSkipDeadNodes) {
  // Node 0 transmits. Nodes 1–3 are decodable (within 40 m), nodes 4–5
  // only carrier-sense the frame (within 80 m). The batched sweeps must
  // deliver in partitioned audible-list order — decodable prefix by id,
  // then CS-only by id — with the dead node (2) silently skipped, and
  // each sweep must be a single event.
  sim::Simulator sim;
  const net::Topology topo{
      {{0, 0}, {10, 0}, {20, 0}, {30, 0}, {50, 0}, {70, 0}}, 40.0, 80.0};
  Channel channel{sim, topo};
  EnergyParams energy;
  std::vector<std::pair<net::NodeId, bool>> starts;
  std::vector<net::NodeId> ends;
  std::vector<std::unique_ptr<RecorderMac>> macs;
  for (net::NodeId i = 0; i < topo.node_count(); ++i) {
    macs.push_back(
        std::make_unique<RecorderMac>(sim, channel, i, energy, starts, ends));
  }
  macs[2]->set_alive(false);

  net::Frame f;
  f.src = 0;
  f.dst = net::kBroadcast;
  f.bytes = 64;
  channel.begin_transmission(0, std::move(f), FrameKind::kData,
                             sim::Time::micros(500));
  // Two events total on the queue: the start sweep and the end sweep.
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run();

  const std::vector<std::pair<net::NodeId, bool>> want_starts{
      {1, true}, {3, true}, {4, false}, {5, false}};
  EXPECT_EQ(starts, want_starts);
  EXPECT_EQ(ends, (std::vector<net::NodeId>{1, 3, 4, 5}));

  // A node that dies between the sweeps misses the end sweep too.
  starts.clear();
  ends.clear();
  macs[2]->set_alive(true);
  net::Frame g;
  g.src = 0;
  g.dst = net::kBroadcast;
  g.bytes = 64;
  channel.begin_transmission(0, std::move(g), FrameKind::kData,
                             sim::Time::micros(500));
  sim.schedule_in(sim::Time::micros(100),
                  [&macs] { macs[3]->set_alive(false); });
  sim.run();
  const std::vector<std::pair<net::NodeId, bool>> want_starts2{
      {1, true}, {2, true}, {3, true}, {4, false}, {5, false}};
  EXPECT_EQ(starts, want_starts2);
  EXPECT_EQ(ends, (std::vector<net::NodeId>{1, 2, 4, 5}));
}

}  // namespace
}  // namespace wsn::mac
