// Tests for the experiment runner, placement and failure machinery.
#include <gtest/gtest.h>

#include <cstdlib>

#include "scenario/experiment.hpp"
#include "scenario/sweep.hpp"

namespace wsn::scenario {
namespace {

ExperimentConfig small_config(core::Algorithm alg,
                              std::size_t nodes = 70,
                              double seconds = 80.0) {
  ExperimentConfig cfg;
  cfg.field.nodes = nodes;
  cfg.algorithm = alg;
  cfg.duration = sim::Time::seconds(seconds);
  cfg.seed = 5;
  return cfg;
}

TEST(Experiment, CornerPlacementRespectsRects) {
  const auto cfg = small_config(core::Algorithm::kOpportunistic);
  const RunResult res = run_experiment(cfg);
  EXPECT_EQ(res.sources.size(), cfg.num_sources);
  EXPECT_EQ(res.sinks.size(), cfg.num_sinks);
  for (net::NodeId s : res.sources) {
    EXPECT_NE(s, res.sinks[0]);
  }
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto cfg = small_config(core::Algorithm::kGreedy, 60, 60.0);
  const RunResult a = run_experiment(cfg);
  const RunResult b = run_experiment(cfg);
  EXPECT_EQ(a.metrics.distinct_generated, b.metrics.distinct_generated);
  EXPECT_EQ(a.metrics.distinct_received, b.metrics.distinct_received);
  EXPECT_DOUBLE_EQ(a.metrics.avg_dissipated_energy,
                   b.metrics.avg_dissipated_energy);
  EXPECT_DOUBLE_EQ(a.metrics.avg_delay, b.metrics.avg_delay);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto cfg = small_config(core::Algorithm::kOpportunistic, 60, 60.0);
  const RunResult a = run_experiment(cfg);
  cfg.seed = 6;
  const RunResult b = run_experiment(cfg);
  EXPECT_NE(a.frames_sent, b.frames_sent);
}

TEST(Experiment, DeliversOnStaticField) {
  for (auto alg : {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
    const RunResult res = run_experiment(small_config(alg));
    EXPECT_GT(res.metrics.delivery_ratio, 0.9) << core::to_string(alg);
    EXPECT_GT(res.metrics.avg_dissipated_energy, 0.0);
    EXPECT_GT(res.metrics.avg_delay, 0.0);
    EXPECT_LT(res.metrics.avg_delay, 2.0);
    EXPECT_FALSE(res.tree_edges.empty());
  }
}

TEST(Experiment, EnergyIsBoundedByPhysics) {
  const auto cfg = small_config(core::Algorithm::kOpportunistic);
  const RunResult res = run_experiment(cfg);
  const double t = cfg.duration.as_seconds();
  const double n = static_cast<double>(cfg.field.nodes);
  // Total energy within [all-idle, all-transmit] envelope.
  EXPECT_GE(res.metrics.total_energy_joules,
            cfg.energy.idle_watts * t * n * 0.99);
  EXPECT_LE(res.metrics.total_energy_joules, cfg.energy.tx_watts * t * n);
  EXPECT_LT(res.metrics.total_active_energy_joules,
            res.metrics.total_energy_joules);
}

TEST(Experiment, FailuresReduceDeliveryButNotFatally) {
  auto cfg = small_config(core::Algorithm::kOpportunistic, 90, 100.0);
  const double base = run_experiment(cfg).metrics.delivery_ratio;
  cfg.failures.enabled = true;
  const RunResult res = run_experiment(cfg);
  EXPECT_LT(res.metrics.delivery_ratio, 1.0);
  EXPECT_GT(res.metrics.delivery_ratio, 0.3);
  EXPECT_LE(res.metrics.delivery_ratio, base + 0.05);
}

TEST(Experiment, MultiSinkDeliversToAll) {
  auto cfg = small_config(core::Algorithm::kGreedy, 90, 80.0);
  cfg.num_sinks = 3;
  const RunResult res = run_experiment(cfg);
  ASSERT_EQ(res.sinks.size(), 3u);
  // All three sinks counted: normalised ratio stays high only if each sink
  // receives most events.
  EXPECT_GT(res.metrics.delivery_ratio, 0.7);
  EXPECT_GT(res.metrics.distinct_received,
            res.metrics.distinct_generated);  // > 1 sink's worth
}

TEST(Experiment, RandomPlacementWorks) {
  auto cfg = small_config(core::Algorithm::kGreedy);
  cfg.source_placement = SourcePlacement::kRandom;
  const RunResult res = run_experiment(cfg);
  EXPECT_EQ(res.sources.size(), cfg.num_sources);
  EXPECT_GT(res.metrics.delivery_ratio, 0.8);
}

TEST(Experiment, LinearAggregationSendsMoreBytes) {
  auto cfg = small_config(core::Algorithm::kGreedy, 80, 80.0);
  cfg.num_sources = 8;
  const auto perfect_bytes = run_experiment(cfg).bytes_sent;
  cfg.diffusion.aggregation = std::make_shared<agg::LinearAggregation>(28, 36);
  const auto linear_bytes = run_experiment(cfg).bytes_sent;
  EXPECT_GT(linear_bytes, perfect_bytes);
}

TEST(Sweep, AveragesOverReplicates) {
  const auto cfg = small_config(core::Algorithm::kOpportunistic, 60, 40.0);
  const AveragedPoint p = run_replicates(cfg, 3, 11);
  EXPECT_EQ(p.replicates, 3);
  EXPECT_EQ(p.energy.count(), 3u);
  EXPECT_GT(p.energy.mean(), 0.0);
  EXPECT_GT(p.delivery.mean(), 0.5);
  EXPECT_GT(p.degree.mean(), 3.0);
}

TEST(Sweep, EnvOverrides) {
  ::setenv("WSN_FIELDS", "7", 1);
  EXPECT_EQ(fields_from_env(3), 7);
  ::unsetenv("WSN_FIELDS");
  EXPECT_EQ(fields_from_env(3), 3);

  ::setenv("WSN_SIM_TIME", "123.5", 1);
  EXPECT_DOUBLE_EQ(sim_seconds_from_env(400.0), 123.5);
  ::unsetenv("WSN_SIM_TIME");
  EXPECT_DOUBLE_EQ(sim_seconds_from_env(400.0), 400.0);

  ::setenv("WSN_FIELDS", "garbage", 1);
  EXPECT_EQ(fields_from_env(3), 3);
  ::unsetenv("WSN_FIELDS");
}

TEST(Sweep, EnvRejectsMalformedValuesLoudly) {
  // atoi would have silently accepted all of these; the strtol/strtod
  // parser rejects them (with a stderr warning) and keeps the fallback.
  for (const char* bad : {"abc", "12abc", "0", "-3", "", " 5 ",
                          "99999999999999999999999999"}) {
    ::setenv("WSN_FIELDS", bad, 1);
    EXPECT_EQ(fields_from_env(4), 4) << "WSN_FIELDS=" << bad;
  }
  ::unsetenv("WSN_FIELDS");

  for (const char* bad : {"zero", "0", "-5", "nan", "inf", "1e400", ""}) {
    ::setenv("WSN_SIM_TIME", bad, 1);
    EXPECT_DOUBLE_EQ(sim_seconds_from_env(200.0), 200.0)
        << "WSN_SIM_TIME=" << bad;
  }
  ::unsetenv("WSN_SIM_TIME");
}

TEST(Sweep, EnvLongValidatesRangeAndShape) {
  ::setenv("WSN_TEST_KNOB", "12", 1);
  EXPECT_EQ(env_long("WSN_TEST_KNOB", 1, 1, 100), 12);
  ::setenv("WSN_TEST_KNOB", "101", 1);  // above hi
  EXPECT_EQ(env_long("WSN_TEST_KNOB", 1, 1, 100), 1);
  ::setenv("WSN_TEST_KNOB", "0", 1);  // below lo
  EXPECT_EQ(env_long("WSN_TEST_KNOB", 1, 1, 100), 1);
  ::setenv("WSN_TEST_KNOB", "7.5", 1);  // trailing junk
  EXPECT_EQ(env_long("WSN_TEST_KNOB", 1, 1, 100), 1);
  ::unsetenv("WSN_TEST_KNOB");
  EXPECT_EQ(env_long("WSN_TEST_KNOB", 9, 1, 100), 9);

  ::setenv("WSN_TEST_KNOB", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("WSN_TEST_KNOB", 1.0, 0.0, 10.0), 2.25);
  ::setenv("WSN_TEST_KNOB", "-1", 1);
  EXPECT_DOUBLE_EQ(env_double("WSN_TEST_KNOB", 1.0, 0.0, 10.0), 1.0);
  ::unsetenv("WSN_TEST_KNOB");
}

TEST(Experiment, PerNodeEnergyExposedAndConsistent) {
  const RunResult res = run_experiment(small_config(core::Algorithm::kGreedy));
  ASSERT_EQ(res.node_energy_joules.size(), 70u);
  ASSERT_EQ(res.node_positions.size(), 70u);
  double sum = 0.0, mx = 0.0;
  for (double j : res.node_energy_joules) {
    EXPECT_GE(j, 0.0);
    sum += j;
    mx = std::max(mx, j);
  }
  EXPECT_NEAR(sum, res.metrics.total_energy_joules, 1e-6);
  EXPECT_DOUBLE_EQ(mx, res.energy_max_node_joules);
  EXPECT_NEAR(sum / 70.0, res.energy_mean_node_joules, 1e-9);
  EXPECT_GT(res.first_death_seconds(18700.0, 80.0), 0.0);
}

TEST(Experiment, DirectionalInterestsCutInterestTraffic) {
  auto cfg = small_config(core::Algorithm::kGreedy, 120, 80.0);
  cfg.interest_region = cfg.source_rect;  // task scoped to the corner
  const auto flood = run_experiment(cfg);
  cfg.diffusion.interest_propagation =
      diffusion::InterestPropagation::kDirectional;
  const auto directional = run_experiment(cfg);
  EXPECT_LT(directional.protocol.interests_sent,
            flood.protocol.interests_sent * 3 / 4);
  EXPECT_GT(directional.metrics.delivery_ratio, 0.85);
}

TEST(Experiment, TdmaMacTypeRuns) {
  auto cfg = small_config(core::Algorithm::kOpportunistic, 50, 60.0);
  cfg.mac_type = MacType::kTdma;
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.metrics.delivery_ratio, 0.7);
  EXPECT_EQ(res.arrivals_corrupted, 0u);
}

TEST(Experiment, TreeEdgesAreValidNodePairs) {
  const RunResult res = run_experiment(small_config(core::Algorithm::kGreedy));
  for (const auto& [from, to] : res.tree_edges) {
    EXPECT_LT(from, 70u);
    EXPECT_LT(to, 70u);
    EXPECT_NE(from, to);
  }
}

}  // namespace
}  // namespace wsn::scenario
