// Unit + integration tests for the TDMA MAC (paper §4.2's alternative).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/channel.hpp"
#include "mac/tdma_mac.hpp"
#include "net/topology.hpp"
#include "scenario/experiment.hpp"
#include "sim/simulator.hpp"

namespace wsn::mac {
namespace {

struct TestUser final : MacUser {
  std::vector<net::Frame> received;
  int failed = 0;
  int succeeded = 0;
  void mac_receive(const net::Frame& f) override { received.push_back(f); }
  void mac_send_failed(const net::Frame&) override { ++failed; }
  void mac_send_succeeded(const net::Frame&) override { ++succeeded; }
};

class TdmaRig {
 public:
  explicit TdmaRig(std::vector<net::Vec2> positions, double range = 40.0)
      : topo_{std::move(positions), range}, channel_{sim_, topo_} {
    for (net::NodeId i = 0; i < topo_.node_count(); ++i) {
      users_.push_back(std::make_unique<TestUser>());
      macs_.push_back(std::make_unique<TdmaMac>(
          sim_, channel_, i, static_cast<std::uint32_t>(topo_.node_count()),
          params_, energy_));
      macs_.back()->set_user(users_.back().get());
    }
  }

  TdmaMac& mac(net::NodeId i) { return *macs_[i]; }
  TestUser& user(net::NodeId i) { return *users_[i]; }
  sim::Simulator& sim() { return sim_; }
  const TdmaParams& params() const { return params_; }

  static net::Frame frame(net::NodeId dst, std::uint32_t bytes = 64) {
    net::Frame f;
    f.dst = dst;
    f.bytes = bytes;
    return f;
  }

 private:
  sim::Simulator sim_;
  net::Topology topo_;
  Channel channel_;
  TdmaParams params_;
  EnergyParams energy_;
  std::vector<std::unique_ptr<TestUser>> users_;
  std::vector<std::unique_ptr<TdmaMac>> macs_;
};

TEST(TdmaParams, SlotMath) {
  TdmaParams p;
  EXPECT_GT(p.slot_duration(), p.payload_airtime(p.max_payload_bytes));
  EXPECT_GT(p.payload_airtime(64), p.preamble);
}

TEST(Tdma, UnicastDeliveredAndAcked) {
  TdmaRig rig{{{0, 0}, {20, 0}}};
  rig.mac(0).send(TdmaRig::frame(1));
  rig.sim().run_until(rig.mac(0).cycle_duration() * 2);
  ASSERT_EQ(rig.user(1).received.size(), 1u);
  EXPECT_EQ(rig.user(0).succeeded, 1);
  EXPECT_EQ(rig.mac(1).stats().acks_sent, 1u);
}

TEST(Tdma, BroadcastReachesNeighbours) {
  TdmaRig rig{{{0, 0}, {20, 0}, {35, 0}, {200, 0}}};
  rig.mac(0).send(TdmaRig::frame(net::kBroadcast));
  rig.sim().run_until(rig.mac(0).cycle_duration());
  EXPECT_EQ(rig.user(1).received.size(), 1u);
  EXPECT_EQ(rig.user(2).received.size(), 1u);
  EXPECT_EQ(rig.user(3).received.size(), 0u);
}

TEST(Tdma, SimultaneousSendersNeverCollide) {
  // All three within range; the schedule serialises them perfectly.
  TdmaRig rig{{{0, 0}, {15, 0}, {30, 0}}};
  for (int k = 0; k < 5; ++k) {
    rig.mac(0).send(TdmaRig::frame(net::kBroadcast));
    rig.mac(1).send(TdmaRig::frame(net::kBroadcast));
    rig.mac(2).send(TdmaRig::frame(net::kBroadcast));
  }
  rig.sim().run_until(rig.mac(0).cycle_duration() * 8);
  EXPECT_EQ(rig.mac(0).stats().arrivals_corrupted, 0u);
  EXPECT_EQ(rig.mac(1).stats().arrivals_corrupted, 0u);
  // Node 1 hears 5 frames from each side.
  EXPECT_EQ(rig.user(1).received.size(), 10u);
}

TEST(Tdma, RetryThenFailureOnDeadReceiver) {
  TdmaRig rig{{{0, 0}, {20, 0}}};
  rig.mac(1).set_alive(false);
  rig.mac(0).send(TdmaRig::frame(1));
  rig.sim().run_until(rig.mac(0).cycle_duration() * 6);
  EXPECT_EQ(rig.user(0).failed, 1);
  EXPECT_EQ(rig.mac(0).stats().drops_retry_exhausted, 1u);
  EXPECT_EQ(rig.mac(0).stats().retries,
            static_cast<std::uint64_t>(rig.params().max_retries));
}

TEST(Tdma, RevivedNodeRejoinsSchedule) {
  TdmaRig rig{{{0, 0}, {20, 0}}};
  rig.mac(1).set_alive(false);
  rig.sim().run_until(rig.mac(0).cycle_duration());
  rig.mac(1).set_alive(true);
  rig.mac(1).send(TdmaRig::frame(0));
  rig.sim().run_until(rig.mac(0).cycle_duration() * 3);
  EXPECT_EQ(rig.user(0).received.size(), 1u);
}

TEST(Tdma, ThroughputOneFramePerCycle) {
  TdmaRig rig{{{0, 0}, {20, 0}}};
  for (int k = 0; k < 10; ++k) rig.mac(0).send(TdmaRig::frame(1));
  rig.sim().run_until(rig.mac(0).cycle_duration() * 4);
  // At most one frame per owned slot: 4 cycles → ≤4 (first slot may be
  // missed depending on phase).
  EXPECT_LE(rig.user(1).received.size(), 4u);
  EXPECT_GE(rig.user(1).received.size(), 3u);
}

TEST(TdmaIntegration, DiffusionRunsOverTdma) {
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = 60;
  cfg.mac_type = scenario::MacType::kTdma;
  cfg.algorithm = core::Algorithm::kGreedy;
  cfg.duration = sim::Time::seconds(120.0);
  cfg.seed = 2;
  // Match the aggregation interval to the TDMA cycle (paper §4.2).
  const auto res = scenario::run_experiment(cfg);
  EXPECT_GT(res.metrics.delivery_ratio, 0.8);
  EXPECT_EQ(res.arrivals_corrupted, 0u);  // collision-free schedule
}

}  // namespace
}  // namespace wsn::mac
