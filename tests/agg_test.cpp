// Unit + property tests for aggregation functions and weighted set cover.
#include <gtest/gtest.h>

#include <cmath>

#include "agg/aggregation_fn.hpp"
#include "agg/set_cover.hpp"
#include "sim/random.hpp"

namespace wsn::agg {
namespace {

TEST(AggregationFn, PerfectIsConstantSize) {
  PerfectAggregation f{64};
  EXPECT_EQ(f.size_bytes(1), 64u);
  EXPECT_EQ(f.size_bytes(14), 64u);
  EXPECT_EQ(f.name(), "perfect");
}

TEST(AggregationFn, LinearMatchesPaperFormula) {
  // Paper §5.4: z(S) = d·28 + 36.
  LinearAggregation f{28, 36};
  EXPECT_EQ(f.size_bytes(1), 64u);
  EXPECT_EQ(f.size_bytes(5), 5u * 28 + 36);
  EXPECT_EQ(f.size_bytes(14), 14u * 28 + 36);
  EXPECT_EQ(f.name(), "linear");
}

TEST(AggregationFn, PackingSavesOnlyHeaders) {
  PackingAggregation f{64, 36};
  // Two packed events: one 36B header instead of two.
  EXPECT_EQ(f.size_bytes(2), 2u * 64 + 36);
  EXPECT_LT(f.size_bytes(2), 2u * (64 + 36));
  EXPECT_EQ(f.name(), "packing");
}

TEST(AggregationFn, TimestampSharesRedundantFields) {
  TimestampAggregation f{28, 24, 36};
  EXPECT_EQ(f.size_bytes(1), 36u + 28);
  EXPECT_EQ(f.size_bytes(3), 36u + 28 + 2 * 24);
  const LinearAggregation linear{28, 36};
  EXPECT_LT(f.size_bytes(3), linear.size_bytes(3));
  EXPECT_EQ(f.name(), "timestamp");
}

// --- the worked example from paper §4.2 / Figure 4(a) -------------------
// S1={a1,a2,b1} w=5, S2={b1,b2} w=6, S3={a2,b2} w=7 over {a1,a2,b1,b2}.
// Greedy picks S1 (ratio 5/3), then S2 (6/1); cover weight 11, and the
// outgoing aggregate costs 11 + 1 = 12.
std::vector<WeightedSet> figure4_event_sets() {
  return {
      {{0, 1, 2}, 5.0},  // a1,a2,b1
      {{2, 3}, 6.0},     // b1,b2
      {{1, 3}, 7.0},     // a2,b2
  };
}

TEST(SetCover, PaperFigure4EventExample) {
  const auto family = figure4_event_sets();
  const auto r = greedy_weighted_set_cover(family, 4);
  ASSERT_TRUE(r.covered);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(r.total_weight, 11.0);
}

TEST(SetCover, PaperFigure4SourceTransform) {
  // §4.3: the same aggregates transformed to sources A,B:
  // S1*={A,B} w=5·2/3, S2*={B} w=6·1/2, S3*={A,B} w=7·2/2.
  const auto family = figure4_event_sets();
  const std::vector<std::vector<std::uint32_t>> sources = {
      {0, 0, 1},  // a1,a2 from A; b1 from B
      {1, 1},     // b1,b2 from B
      {0, 1},     // a2 from A; b2 from B
  };
  const auto transformed = transform_to_sources(family, sources);
  ASSERT_EQ(transformed.size(), 3u);
  EXPECT_EQ(transformed[0].elements, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_NEAR(transformed[0].weight, 10.0 / 3.0, 1e-12);
  EXPECT_EQ(transformed[1].elements, (std::vector<std::uint32_t>{1}));
  EXPECT_NEAR(transformed[1].weight, 3.0, 1e-12);
  EXPECT_EQ(transformed[2].elements, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_NEAR(transformed[2].weight, 7.0, 1e-12);

  // Cost ratios are preserved: r1 = 5/3, r2 = 3, r3 = 7/2 (paper values).
  EXPECT_NEAR(transformed[0].weight / 2.0, 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(transformed[1].weight / 1.0, 3.0, 1e-12);
  EXPECT_NEAR(transformed[2].weight / 2.0, 3.5, 1e-12);

  // Greedy over the transformed instance selects only S1* → L negatively
  // reinforces H (S2) and K (S3), exactly the paper's conclusion.
  const auto r = greedy_weighted_set_cover(transformed, 2);
  ASSERT_TRUE(r.covered);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{0}));
}

TEST(SetCover, RedundantSubsetRemoved) {
  // Greedy picks {0,1} then {2,3} then... make a set that becomes redundant:
  // A={0,1} w=1, B={2,3} w=1, C={0,1,2,3} w=2.1.
  // Greedy ratios: A=0.5, B=0.5, C=0.525 → picks A, B; C never chosen.
  // Reverse: C first if cheap — make C w=1.9 (ratio 0.475): picks C, done.
  std::vector<WeightedSet> family{{{0, 1}, 1.0}, {{2, 3}, 1.0}, {{0, 1, 2, 3}, 1.9}};
  auto r = greedy_weighted_set_cover(family, 4);
  ASSERT_TRUE(r.covered);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{2}));
  EXPECT_DOUBLE_EQ(r.total_weight, 1.9);

  // Force redundancy: D={0} w=0.1 is picked first (ratio 0.1). Greedy then
  // covers the rest with B (ratio 0.5) and A (ratio 1 for its last
  // element), at which point D ⊆ A is redundant and must be dropped.
  family.push_back({{0}, 0.1});
  r = greedy_weighted_set_cover(family, 4);
  ASSERT_TRUE(r.covered);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(r.total_weight, 2.0);
}

TEST(SetCover, EmptyUniverseIsTriviallyCovered) {
  const auto r = greedy_weighted_set_cover({}, 0);
  EXPECT_TRUE(r.covered);
  EXPECT_TRUE(r.chosen.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
}

TEST(SetCover, UncoverableReported) {
  std::vector<WeightedSet> family{{{0}, 1.0}};
  const auto r = greedy_weighted_set_cover(family, 2);
  EXPECT_FALSE(r.covered);
}

TEST(SetCover, ExactSolverOnKnownInstance) {
  // Exact must beat greedy here: universe {0,1,2}, greedy takes the big
  // cheap-ratio set then pays for the rest.
  std::vector<WeightedSet> family{
      {{0, 1}, 2.0}, {{1, 2}, 2.0}, {{0, 2}, 2.0}, {{0, 1, 2}, 3.5}};
  const auto exact = exact_weighted_set_cover(family, 3);
  ASSERT_TRUE(exact.covered);
  EXPECT_DOUBLE_EQ(exact.total_weight, 3.5);
  EXPECT_EQ(exact.chosen, (std::vector<std::size_t>{3}));
}

TEST(SetCover, ExactUncoverable) {
  std::vector<WeightedSet> family{{{0}, 1.0}};
  EXPECT_FALSE(exact_weighted_set_cover(family, 3).covered);
}

TEST(SetCover, TransformHandlesEmptySets) {
  std::vector<WeightedSet> family{{{}, 4.0}};
  std::vector<std::vector<std::uint32_t>> sources{{}};
  const auto t = transform_to_sources(family, sources);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t[0].elements.empty());
  EXPECT_DOUBLE_EQ(t[0].weight, 4.0);
}

// Property: on random instances, greedy covers, never beats exact, and
// stays within the ln(d)+1 approximation bound.
class SetCoverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetCoverProperty, GreedyVsExact) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 40; ++trial) {
    const auto m = static_cast<std::uint32_t>(rng.uniform_int(2, 10));
    const auto n_sets = static_cast<std::size_t>(rng.uniform_int(2, 12));
    std::vector<WeightedSet> family(n_sets);
    std::size_t max_set = 1;
    for (auto& s : family) {
      for (std::uint32_t e = 0; e < m; ++e) {
        if (rng.chance(0.45)) s.elements.push_back(e);
      }
      s.weight = rng.uniform(0.5, 10.0);
      max_set = std::max(max_set, s.elements.size());
    }
    // Guarantee coverability with one catch-all set of random weight.
    WeightedSet all;
    for (std::uint32_t e = 0; e < m; ++e) all.elements.push_back(e);
    all.weight = rng.uniform(5.0, 20.0);
    family.push_back(all);
    max_set = std::max(max_set, all.elements.size());

    const auto greedy = greedy_weighted_set_cover(family, m);
    const auto exact = exact_weighted_set_cover(family, m);
    ASSERT_TRUE(greedy.covered);
    ASSERT_TRUE(exact.covered);
    EXPECT_GE(greedy.total_weight, exact.total_weight - 1e-9);
    const double bound = std::log(static_cast<double>(max_set)) + 1.0;
    EXPECT_LE(greedy.total_weight, exact.total_weight * bound + 1e-9)
        << "trial " << trial;

    // The chosen family must actually cover the universe.
    std::vector<char> covered(m, 0);
    for (auto idx : greedy.chosen) {
      for (auto e : family[idx].elements) covered[e] = 1;
    }
    for (std::uint32_t e = 0; e < m; ++e) EXPECT_TRUE(covered[e]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace wsn::agg
