// Unit tests for accumulators and the paper's metrics.
#include <gtest/gtest.h>

#include "stats/accumulator.hpp"
#include "stats/metrics.hpp"

namespace wsn::stats {
namespace {

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.sem(), a.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_TRUE(std::isnan(a.variance()));
  EXPECT_TRUE(std::isnan(a.min()));
}

TEST(Accumulator, SingleValueHasUnknownSpread) {
  // One sample fixes the mean but says nothing about the spread: variance
  // and SEM are NaN (unknown), never a misleading 0.0. The CSV/JSON
  // writers turn the NaN into an empty field / null.
  Accumulator a;
  a.add(3.5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_TRUE(std::isnan(a.variance()));
  EXPECT_TRUE(std::isnan(a.stddev()));
  EXPECT_TRUE(std::isnan(a.sem()));
}

TEST(Accumulator, TwoValuesHaveFiniteSpread) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 2.0);
  EXPECT_DOUBLE_EQ(a.sem(), std::sqrt(2.0) / std::sqrt(2.0));
}

TEST(MetricsCollector, CountsDistinctPerSink) {
  MetricsCollector c;
  using diffusion::DataItemKey;
  const auto t0 = sim::Time::seconds(1.0);
  c.on_event_generated(DataItemKey{7, 0}, t0);
  c.on_event_generated(DataItemKey{7, 1}, t0);
  c.on_event_generated(DataItemKey{8, 0}, t0);

  // Sink 100 receives item (7,0) twice: only the first counts.
  c.on_event_delivered(100, DataItemKey{7, 0}, t0, sim::Time::seconds(1.5));
  c.on_event_delivered(100, DataItemKey{7, 0}, t0, sim::Time::seconds(2.5));
  // A second sink receiving the same item counts separately.
  c.on_event_delivered(101, DataItemKey{7, 0}, t0, sim::Time::seconds(2.0));

  EXPECT_EQ(c.distinct_generated(), 3u);
  EXPECT_EQ(c.distinct_received(), 2u);
  EXPECT_EQ(c.sinks_seen(), 2u);
  // Delays: 0.5 (first at sink 100) and 1.0 (sink 101); the duplicate is
  // not measured.
  EXPECT_DOUBLE_EQ(c.delay().mean(), 0.75);
}

TEST(MetricsCollector, FinalizeComputesPaperMetrics) {
  MetricsCollector c;
  using diffusion::DataItemKey;
  const auto t0 = sim::Time::zero();
  for (std::uint32_t i = 0; i < 10; ++i) {
    c.on_event_generated(DataItemKey{1, i}, t0);
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    c.on_event_delivered(50, DataItemKey{1, i}, t0, sim::Time::seconds(0.2));
  }
  // 20 J total, 5 J active, 4 nodes, 1 sink.
  const RunMetrics m = c.finalize(20.0, 5.0, 4, 1);
  EXPECT_EQ(m.distinct_generated, 10u);
  EXPECT_EQ(m.distinct_received, 8u);
  // (20 J / 4 nodes) / 8 events.
  EXPECT_DOUBLE_EQ(m.avg_dissipated_energy, 0.625);
  EXPECT_DOUBLE_EQ(m.avg_active_energy, 5.0 / 4.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.avg_delay, 0.2);
  EXPECT_DOUBLE_EQ(m.delivery_ratio, 0.8);
}

TEST(MetricsCollector, MultiSinkNormalisation) {
  MetricsCollector c;
  using diffusion::DataItemKey;
  const auto t0 = sim::Time::zero();
  for (std::uint32_t i = 0; i < 4; ++i) {
    c.on_event_generated(DataItemKey{1, i}, t0);
  }
  // Two sinks, each receives all 4 events.
  for (net::NodeId sink : {10u, 11u}) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      c.on_event_delivered(sink, DataItemKey{1, i}, t0, sim::Time::seconds(0.1));
    }
  }
  const RunMetrics m = c.finalize(1.0, 1.0, 2, 2);
  EXPECT_EQ(m.distinct_received, 8u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio, 1.0);  // normalised per sink
}

TEST(MetricsCollector, ZeroReceivedIsSafe) {
  MetricsCollector c;
  c.on_event_generated(diffusion::DataItemKey{1, 0}, sim::Time::zero());
  const RunMetrics m = c.finalize(10.0, 1.0, 4, 1);
  EXPECT_DOUBLE_EQ(m.avg_dissipated_energy, 0.0);
  EXPECT_DOUBLE_EQ(m.delivery_ratio, 0.0);
}

}  // namespace
}  // namespace wsn::stats
