// Cross-module integration tests: the paper's headline comparisons in
// miniature (shorter runs, single seeds — the full sweeps live in bench/).
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace wsn {
namespace {

using scenario::ExperimentConfig;
using scenario::RunResult;
using scenario::run_experiment;

ExperimentConfig config(core::Algorithm alg, std::size_t nodes,
                        std::uint64_t seed = 3, double seconds = 150.0) {
  ExperimentConfig cfg;
  cfg.field.nodes = nodes;
  cfg.algorithm = alg;
  cfg.duration = sim::Time::seconds(seconds);
  cfg.seed = seed;
  return cfg;
}

TEST(Integration, BothAlgorithmsDeliverAtModerateDensity) {
  for (auto alg : {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
    const RunResult res = run_experiment(config(alg, 100));
    EXPECT_GT(res.metrics.delivery_ratio, 0.9) << core::to_string(alg);
  }
}

TEST(Integration, GreedySavesTransmissionsAtHighDensity) {
  // The paper's core claim, in miniature: at high density the greedy tree
  // shares paths, so it puts materially fewer frames on the air while
  // delivering comparably.
  const RunResult opp =
      run_experiment(config(core::Algorithm::kOpportunistic, 200));
  const RunResult greedy = run_experiment(config(core::Algorithm::kGreedy, 200));

  EXPECT_GT(opp.metrics.delivery_ratio, 0.85);
  EXPECT_GT(greedy.metrics.delivery_ratio, 0.85);
  EXPECT_LT(greedy.frames_sent, opp.frames_sent);
  EXPECT_LT(greedy.metrics.avg_active_energy,
            opp.metrics.avg_active_energy * 0.85);
}

TEST(Integration, GreedyTreeIsSmallerAtHighDensity) {
  const RunResult opp =
      run_experiment(config(core::Algorithm::kOpportunistic, 200));
  const RunResult greedy = run_experiment(config(core::Algorithm::kGreedy, 200));
  // Final data-gradient edge count: the greedy incremental tree is leaner.
  EXPECT_LT(greedy.tree_edges.size(), opp.tree_edges.size() + 1);
}

TEST(Integration, DelayStaysSubSecondForBoth) {
  for (auto alg : {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
    const RunResult res = run_experiment(config(alg, 150));
    EXPECT_GT(res.metrics.avg_delay, 0.0) << core::to_string(alg);
    EXPECT_LT(res.metrics.avg_delay, 1.0) << core::to_string(alg);
  }
}

TEST(Integration, FailuresHurtLowDensityMore) {
  // Fig 6 mechanism check at one point: with failures on, delivery drops
  // but the protocol keeps repairing (ratio stays well above zero).
  auto cfg = config(core::Algorithm::kGreedy, 120, 7, 150.0);
  cfg.failures.enabled = true;
  const RunResult res = run_experiment(cfg);
  EXPECT_GT(res.metrics.delivery_ratio, 0.4);
  EXPECT_LT(res.metrics.delivery_ratio, 1.0);
}

TEST(Integration, ProtocolOverheadScalesWithDensity) {
  // Interest flooding costs grow with node count (paper: energy rises with
  // network size for both schemes).
  const RunResult lo = run_experiment(config(core::Algorithm::kGreedy, 60));
  const RunResult hi = run_experiment(config(core::Algorithm::kGreedy, 200));
  EXPECT_GT(hi.protocol.interests_sent, lo.protocol.interests_sent * 2);
}

TEST(Integration, ActiveEnergyIsMinorityOfTotalAtThisWorkload) {
  // Documents the idle-floor effect analysed in EXPERIMENTS.md.
  const RunResult res = run_experiment(config(core::Algorithm::kGreedy, 100));
  EXPECT_LT(res.metrics.total_active_energy_joules,
            res.metrics.total_energy_joules * 0.5);
}

}  // namespace
}  // namespace wsn
