// Rotation semantics of the §5.3 failure process (scenario/failure.*):
// revive-before-draw, deterministic victim choice, and the guarantee that
// metrics hooks never fire for powered-down nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "protocol_rig.hpp"
#include "scenario/failure.hpp"

namespace wsn::scenario {
namespace {

using wsn::testing::ProtocolRig;

std::vector<net::Vec2> grid(std::size_t n) {
  std::vector<net::Vec2> p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back({static_cast<double>(i % 4) * 30.0,
                 static_cast<double>(i / 4) * 30.0});
  }
  return p;
}

struct FailureRig {
  explicit FailureRig(std::size_t nodes, const FailureModel& model,
                      std::vector<char> protected_nodes,
                      std::uint64_t rng_seed)
      : rig{grid(nodes), core::Algorithm::kOpportunistic} {
    std::vector<mac::MacBase*> macs;
    for (net::NodeId i = 0; i < rig.topology().node_count(); ++i) {
      macs.push_back(&rig.mac(i));
    }
    process = std::make_unique<FailureProcess>(rig.sim(), macs,
                                               std::move(protected_nodes),
                                               model, sim::Rng{rng_seed});
  }

  [[nodiscard]] std::size_t alive_count() {
    std::size_t n = 0;
    for (net::NodeId i = 0; i < rig.topology().node_count(); ++i) {
      if (rig.mac(i).alive()) ++n;
    }
    return n;
  }

  ProtocolRig rig;
  std::unique_ptr<FailureProcess> process;
};

FailureModel model_with(double fraction, double period_s = 10.0) {
  FailureModel m;
  m.enabled = true;
  m.fraction = fraction;
  m.period = sim::Time::seconds(period_s);
  return m;
}

TEST(FailureProcess, VictimsAreRevivedBeforeNewOnesAreDrawn) {
  // 12 nodes, 20% fraction → 2 victims/round. If the previous victims were
  // not revived before the new draw, the down population would accumulate
  // across rotations instead of staying at exactly the victim count.
  FailureRig f{12, model_with(0.2), std::vector<char>(12, 0), 7};
  for (int round = 1; round <= 8; ++round) {
    f.rig.run_for(10.0 * round + 1.0);
    EXPECT_EQ(f.process->rotations(), static_cast<std::uint64_t>(round));
    EXPECT_EQ(f.process->down_nodes().size(), 2u) << "round " << round;
    EXPECT_EQ(f.alive_count(), 10u) << "round " << round;
  }
}

TEST(FailureProcess, FullFractionKillsEveryEligibleEveryRound) {
  // With fraction 1.0 the victim quota covers the whole field; only the
  // protected nodes must survive, every round — which also proves last
  // round's victims re-entered the eligible pool.
  std::vector<char> prot(12, 0);
  prot[0] = 1;
  prot[11] = 1;
  FailureRig f{12, model_with(1.0), prot, 3};
  for (int round = 1; round <= 4; ++round) {
    f.rig.run_for(10.0 * round + 1.0);
    EXPECT_EQ(f.process->down_nodes().size(), 10u) << "round " << round;
    EXPECT_TRUE(f.rig.mac(0).alive());
    EXPECT_TRUE(f.rig.mac(11).alive());
    EXPECT_EQ(f.alive_count(), 2u) << "round " << round;
  }
}

TEST(FailureProcess, VictimChoiceIsDeterministicAcrossInstances) {
  // Same rng seed, same field → identical victim sequences, rotation by
  // rotation, across independent process instances.
  FailureRig a{16, model_with(0.25), std::vector<char>(16, 0), 99};
  FailureRig b{16, model_with(0.25), std::vector<char>(16, 0), 99};
  for (int round = 1; round <= 6; ++round) {
    a.rig.run_for(10.0 * round + 1.0);
    b.rig.run_for(10.0 * round + 1.0);
    EXPECT_EQ(a.process->down_nodes(), b.process->down_nodes())
        << "round " << round;
  }
  // A different stream picks a different sequence somewhere in 6 rounds.
  FailureRig c{16, model_with(0.25), std::vector<char>(16, 0), 100};
  bool any_diff = false;
  for (int round = 1; round <= 6; ++round) {
    c.rig.run_for(10.0 * round + 1.0);
    a.rig.run_for(10.0 * round + 1.0);  // idempotent: already past this time
    if (c.process->down_nodes() != a.process->down_nodes()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FailureProcess, MetricsHooksSilentWhileNodeIsDown) {
  // A live source generates (hook fires); a powered-down one must not. The
  // generation path early-outs on a dead MAC before touching the hook.
  ProtocolRig rig{grid(4), core::Algorithm::kOpportunistic};
  rig.node(0).make_sink(rig.whole_field());
  rig.node(3).set_detecting(true);
  rig.start_all();
  rig.run_for(20.0);
  const std::uint64_t generated_live = rig.collector().distinct_generated();
  ASSERT_GT(generated_live, 0u);

  rig.mac(3).set_alive(false);
  rig.run_for(40.0);
  EXPECT_EQ(rig.collector().distinct_generated(), generated_live)
      << "hook fired for a down node";

  rig.mac(3).set_alive(true);
  rig.run_for(80.0);
  EXPECT_GT(rig.collector().distinct_generated(), generated_live)
      << "revived node never resumed generating";
}

}  // namespace
}  // namespace wsn::scenario
