// Tests for the parallel replicate engine: the thread pool itself, the
// WSN_JOBS knob, and the headline guarantee — the parallel path is
// bit-identical (digest-equal) to the serial path for any job count.
//
// CI runs this binary under ThreadSanitizer with WSN_JOBS=4, so every data
// race between replicate workers (logger, audit counters, slot writes)
// is a test failure, not just a wrong number.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/parallel.hpp"
#include "scenario/sweep.hpp"
#include "sim/logger.hpp"

namespace wsn::scenario {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(100, 0);
  pool.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReusableAcrossBatchesAndOddSizes) {
  ThreadPool pool{3};
  // count < workers, count == 0, count >> workers — all on one pool.
  std::atomic<int> ran{0};
  pool.run_indexed(2, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
  pool.run_indexed(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
  pool.run_indexed(50, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 52);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool{2};
  EXPECT_THROW(
      pool.run_indexed(8,
                       [](std::size_t i) {
                         if (i == 5) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Pool must survive a throwing batch.
  std::atomic<int> ran{0};
  pool.run_indexed(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ForEachIndex, SerialWhenJobsIsOne) {
  // jobs=1 must execute in index order on the calling thread — the old
  // serial path.
  std::vector<std::size_t> order;
  for_each_index(
      5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachIndex, ParallelCoversAllIndices) {
  std::mutex mu;
  std::set<std::size_t> seen;
  for_each_index(
      40,
      [&](std::size_t i) {
        std::lock_guard lk{mu};
        seen.insert(i);
      },
      8);
  EXPECT_EQ(seen.size(), 40u);
}

TEST(JobsFromEnv, IsCachedAndAtLeastOne) {
  // The knob is read once per process (the shared pool is sized from it),
  // so two calls must agree even if the env changes in between.
  const int first = jobs_from_env();
  EXPECT_GE(first, 1);
  ::setenv("WSN_JOBS", "3", 1);
  EXPECT_EQ(jobs_from_env(), first);
  ::unsetenv("WSN_JOBS");
}

TEST(JobsFromEnv, ValidationMatchesTheOtherKnobs) {
  // jobs_from_env is cached, so exercise its parser (env_long on WSN_JOBS)
  // directly: rejects junk, zero, and out-of-range values with a fallback.
  ::setenv("WSN_JOBS", "8", 1);
  EXPECT_EQ(env_long("WSN_JOBS", 2, 1, 4096), 8);
  for (const char* bad : {"0", "-1", "two", "8x", "1000000"}) {
    ::setenv("WSN_JOBS", bad, 1);
    EXPECT_EQ(env_long("WSN_JOBS", 2, 1, 4096), 2) << "WSN_JOBS=" << bad;
  }
  ::unsetenv("WSN_JOBS");
  EXPECT_EQ(env_long("WSN_JOBS", 2, 1, 4096), 2);
}

ExperimentConfig small_config(core::Algorithm alg) {
  ExperimentConfig cfg;
  cfg.field.nodes = 60;
  cfg.algorithm = alg;
  cfg.duration = sim::Time::seconds(30.0);
  return cfg;
}

TEST(ParallelReplicates, DigestIdenticalAcrossJobCounts) {
  // The acceptance bar: WSN_JOBS ∈ {1, 2, 8} produce bit-identical
  // accumulator streams for the same seeds.
  const ExperimentConfig cfg = small_config(core::Algorithm::kGreedy);
  const AveragedPoint serial = run_replicates(cfg, 6, 11, /*jobs=*/1);
  const AveragedPoint two = run_replicates(cfg, 6, 11, /*jobs=*/2);
  const AveragedPoint eight = run_replicates(cfg, 6, 11, /*jobs=*/8);
  ASSERT_EQ(serial.replicates, 6);
  ASSERT_EQ(two.replicates, 6);
  ASSERT_EQ(eight.replicates, 6);
  EXPECT_EQ(digest_of(serial), digest_of(two));
  EXPECT_EQ(digest_of(serial), digest_of(eight));
}

TEST(ParallelReplicates, DigestIdenticalUnderFailuresAndBaseline) {
  // Failure churn exercises the repair path; the opportunistic baseline
  // exercises the other protocol stack. Both must be job-count-invariant.
  ExperimentConfig cfg = small_config(core::Algorithm::kOpportunistic);
  cfg.failures.enabled = true;
  EXPECT_EQ(digest_of(run_replicates(cfg, 4, 3, 1)),
            digest_of(run_replicates(cfg, 4, 3, 4)));
}

TEST(ParallelReplicates, DefaultJobsMatchSerial) {
  // jobs<=0 routes through WSN_JOBS/hardware concurrency and the shared
  // pool; the result must still match the forced-serial path bit for bit.
  const ExperimentConfig cfg = small_config(core::Algorithm::kGreedy);
  EXPECT_EQ(digest_of(run_replicates(cfg, 4, 1, 0)),
            digest_of(run_replicates(cfg, 4, 1, 1)));
}

TEST(ParallelReplicates, DifferentSeedsStillDiverge) {
  // Sanity: the digest discriminates — parallelism must not wash out the
  // seed dependence.
  const ExperimentConfig cfg = small_config(core::Algorithm::kGreedy);
  EXPECT_NE(digest_of(run_replicates(cfg, 4, 1, 4)),
            digest_of(run_replicates(cfg, 4, 100, 4)));
}

TEST(ParallelReplicates, ConcurrentLoggingIsSafe) {
  // Raise the log level so replicate workers actually hit the logger while
  // running concurrently; under tsan this is the logger race detector.
  const sim::LogLevel old = sim::Logger::level();
  sim::Logger::set_level(sim::LogLevel::kError);
  const ExperimentConfig cfg = small_config(core::Algorithm::kGreedy);
  const AveragedPoint p = run_replicates(cfg, 4, 1, 4);
  sim::Logger::set_level(old);
  EXPECT_EQ(p.replicates, 4);
}

}  // namespace
}  // namespace wsn::scenario
