// Abstract link layer: what the diffusion stack needs from a MAC.
#pragma once

#include <bit>
#include <cstdint>

#include "mac/channel.hpp"
#include "mac/energy.hpp"
#include "net/types.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace wsn::mac {

/// Upper-layer callback interface (implemented by the diffusion layer).
class MacUser {
 public:
  virtual ~MacUser() = default;
  /// A decoded frame addressed to this node (or broadcast) arrived.
  virtual void mac_receive(const net::Frame& frame) = 0;
  /// A unicast frame was dropped after exhausting its retries — the usual
  /// sign of a dead or unreachable next hop. Default: ignore.
  virtual void mac_send_failed(const net::Frame& frame) { (void)frame; }
  /// A unicast frame was acknowledged. Default: ignore.
  virtual void mac_send_succeeded(const net::Frame& frame) { (void)frame; }
};

/// Counters exposed for metrics and tests.
struct MacStats {
  std::uint64_t frames_sent = 0;       ///< data frames put on the air
  std::uint64_t acks_sent = 0;
  std::uint64_t frames_delivered = 0;  ///< clean frames handed to the user
  std::uint64_t arrivals_corrupted = 0;
  std::uint64_t drops_queue_full = 0;
  std::uint64_t drops_retry_exhausted = 0;
  std::uint64_t retries = 0;
  std::uint64_t bytes_sent = 0;        ///< payload bytes, data frames only
};

/// Base class for link layers (CSMA/CA and TDMA implementations provided).
/// Owns the pieces every MAC shares: identity, liveness, the energy meter
/// and the user hook; concrete MACs implement medium access and implement
/// the channel-facing arrival callbacks.
class MacBase {
 public:
  MacBase(sim::Simulator& sim, Channel& channel, net::NodeId id,
          const EnergyParams& energy)
      : sim_{&sim}, channel_{&channel}, id_{id}, meter_{energy} {
    channel.attach(id, this);
  }
  virtual ~MacBase() = default;

  MacBase(const MacBase&) = delete;
  MacBase& operator=(const MacBase&) = delete;

  void set_user(MacUser* user) { user_ = user; }

  /// Queues a frame for transmission. Drops (and counts) when the queue is
  /// full or the node is down.
  virtual void send(net::Frame frame) = 0;

  /// Powers the node down/up. Down: queue flushed, timers cancelled, any
  /// in-flight transmission aborted, zero energy draw.
  virtual void set_alive(bool alive) = 0;

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] const MacStats& stats() const { return stats_; }

  /// Energy consumed up to `now`.
  [[nodiscard]] double energy_joules(sim::Time now) {
    meter_.accumulate_to(now);
    return meter_.joules();
  }
  /// Energy consumed transmitting/receiving only (no idle floor).
  [[nodiscard]] double active_energy_joules(sim::Time now) {
    meter_.accumulate_to(now);
    return meter_.active_joules();
  }

  // --- Channel-facing interface (called by Channel's scheduled events) ---
  /// `decodable` is false for carrier-sense-only arrivals (audible but out
  /// of radio range): they occupy the medium and cost receive energy but
  /// can never be delivered.
  virtual void arrival_start(const TransmissionPtr& tx, bool decodable) = 0;
  virtual void arrival_end(const TransmissionPtr& tx) = 0;

 protected:
  /// Radio-state transition with energy-sample tracing: accumulates the
  /// meter exactly like a direct set_state call, and emits one trace
  /// record per actual state change (not per refresh).
  void set_radio_state(RadioState s) {
    const RadioState prev = meter_.state();
    meter_.set_state(sim_->now(), s);
    if (s != prev) {
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kEnergySample, id_,
                     trace::kNoPeer, static_cast<std::uint64_t>(s),
                     std::bit_cast<std::uint64_t>(meter_.joules()));
    }
  }

  sim::Simulator* sim_;
  Channel* channel_;
  net::NodeId id_;
  EnergyMeter meter_;
  MacUser* user_ = nullptr;
  bool alive_ = true;
  MacStats stats_;
};

}  // namespace wsn::mac
