#include "mac/csma_mac.hpp"

#include <algorithm>
#include <utility>

#include "sim/audit.hpp"
#include "sim/logger.hpp"

namespace wsn::mac {

namespace {
constexpr std::string_view kTag = "mac";
}

CsmaMac::CsmaMac(sim::Simulator& sim, Channel& channel, net::NodeId id,
                 const PhyParams& phy, const EnergyParams& energy,
                 sim::Rng rng)
    : MacBase{sim, channel, id, energy},
      phy_{phy},
      rng_{rng},
      cw_{phy.cw_min},
      difs_timer_{sim, [this] { on_difs_elapsed(); }},
      slot_timer_{sim, [this] { on_slot_elapsed(); }},
      ack_timer_{sim, [this] { on_ack_timeout(); }} {}

void CsmaMac::audit_frame_conservation() const {
  WSN_AUDIT_CHECK(audit_accepted_ == audit_completed_ + queue_.size(),
                  "MAC frame conservation broken: accepted != "
                  "completed + queued");
}

void CsmaMac::send(net::Frame frame) {
  if (!alive_) return;
  if (queue_.size() >= phy_.queue_limit) {
    ++stats_.drops_queue_full;
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacDrop, id_, frame.dst,
                   trace::DropReason::kQueueFull, queue_.size());
    return;
  }
  frame.src = id_;
  queue_.push_back(Outgoing{std::move(frame), 0});
  ++audit_accepted_;
  audit_frame_conservation();
  if (state_ == State::kIdle) start_contention();
}

void CsmaMac::set_alive(bool alive) {
  if (alive == alive_) return;
  alive_ = alive;
  if (!alive) {
    // Power down: abort any in-flight frame, drop state, stop drawing power.
    if (outgoing_tx_) outgoing_tx_->aborted = true;
    outgoing_tx_.reset();
    transmitting_ = false;
    pending_ack_tx_ = false;
    audit_completed_ += queue_.size();  // power-down flush drops the queue
    queue_.clear();
    arrivals_.clear();
    active_arrivals_ = 0;
    backoff_slots_ = -1;
    cw_ = phy_.cw_min;
    state_ = State::kIdle;
    difs_timer_.cancel();
    slot_timer_.cancel();
    ack_timer_.cancel();
    if (tx_end_event_.valid()) {
      sim_->cancel(tx_end_event_);
      tx_end_event_ = sim::EventHandle{};
    }
    set_radio_state(RadioState::kOff);
  } else {
    set_radio_state(RadioState::kIdle);
  }
}

void CsmaMac::update_radio_state() {
  RadioState s = RadioState::kIdle;
  if (!alive_) {
    s = RadioState::kOff;
  } else if (transmitting_) {
    s = RadioState::kTx;
  } else if (active_arrivals_ > 0) {
    s = RadioState::kRx;
  }
  set_radio_state(s);
}

std::uint32_t CsmaMac::draw_backoff() {
  return static_cast<std::uint32_t>(rng_.uniform_int(0, cw_));
}

void CsmaMac::start_contention() {
  state_ = State::kContend;
  backoff_slots_ = -1;
  if (!medium_busy()) difs_timer_.arm(phy_.difs);
  // else: wait for medium_became_idle() to arm DIFS.
}

void CsmaMac::medium_became_busy() {
  if (state_ == State::kContend) {
    // Freeze: DIFS restarts and the remaining backoff resumes after the
    // medium has been idle for DIFS again.
    difs_timer_.cancel();
    slot_timer_.cancel();
  }
}

void CsmaMac::medium_became_idle() {
  if (state_ == State::kContend) difs_timer_.arm(phy_.difs);
}

void CsmaMac::on_difs_elapsed() {
  if (medium_busy()) return;  // raced with an arrival; idle handler re-arms
  if (backoff_slots_ < 0) {
    backoff_slots_ = static_cast<std::int32_t>(draw_backoff());
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacBackoff, id_, trace::kNoPeer,
                   backoff_slots_, cw_);
  }
  if (backoff_slots_ == 0) {
    start_transmission();
  } else {
    slot_timer_.arm(phy_.slot);
  }
}

void CsmaMac::on_slot_elapsed() {
  if (medium_busy()) return;
  --backoff_slots_;
  if (backoff_slots_ <= 0) {
    start_transmission();
  } else {
    slot_timer_.arm(phy_.slot);
  }
}

void CsmaMac::start_transmission() {
  if (queue_.empty()) {
    state_ = State::kIdle;
    return;
  }
  Outgoing& out = queue_.front();
  state_ = State::kTransmit;
  transmitting_ = true;
  // Our own carrier corrupts anything we were mid-receiving (half duplex).
  for (auto& [txp, st] : arrivals_) st.corrupt = true;
  update_radio_state();

  const sim::Time airtime = phy_.frame_airtime(out.frame.bytes);
  outgoing_tx_ =
      channel_->begin_transmission(id_, out.frame, FrameKind::kData, airtime);
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacTxStart, id_, out.frame.dst,
                 outgoing_tx_->id, out.frame.bytes);
  ++stats_.frames_sent;
  stats_.bytes_sent += out.frame.bytes;
  if (out.attempts > 0) ++stats_.retries;
  tx_end_event_ = sim_->schedule_in(airtime, [this] { on_tx_end(); });
  WSN_LOG_AT(sim::LogLevel::kTrace, sim_->now(), kTag, "node %u tx %u bytes to %u",
             id_, out.frame.bytes, out.frame.dst);
}

void CsmaMac::on_tx_end() {
  tx_end_event_ = sim::EventHandle{};
  transmitting_ = false;
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacTxEnd, id_, trace::kNoPeer,
                 outgoing_tx_ ? outgoing_tx_->id : 0, 0);
  outgoing_tx_.reset();
  update_radio_state();

  if (pending_ack_tx_) {
    // The frame that just ended was an ACK we sent on behalf of a received
    // unicast; it did not come from the queue. Resume whatever we were
    // doing: kWaitAck keeps waiting (its timer is untouched), contention
    // restarts, and an idle MAC with queued work starts contending.
    pending_ack_tx_ = false;
    if (state_ == State::kContend ||
        (state_ == State::kIdle && !queue_.empty())) {
      start_contention();
    }
    return;
  }

  if (queue_.empty()) {
    state_ = State::kIdle;
    return;
  }
  const Outgoing& out = queue_.front();
  const bool is_unicast = out.frame.dst != net::kBroadcast;
  if (is_unicast) {
    state_ = State::kWaitAck;
    ack_timer_.arm(phy_.ack_timeout());
  } else {
    finish_current(true);
  }
}

void CsmaMac::on_ack_timeout() {
  Outgoing& out = queue_.front();
  ++out.attempts;
  if (out.attempts > phy_.max_retries) {
    ++stats_.drops_retry_exhausted;
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacDrop, id_, out.frame.dst,
                   trace::DropReason::kRetryExhausted, out.attempts);
    finish_current(false);
  } else {
    cw_ = std::min(cw_ * 2 + 1, phy_.cw_max);
    start_contention();
  }
}

void CsmaMac::finish_current(bool success) {
  if (user_ != nullptr && queue_.front().frame.dst != net::kBroadcast) {
    if (success) {
      user_->mac_send_succeeded(queue_.front().frame);
    } else {
      user_->mac_send_failed(queue_.front().frame);
    }
  }
  queue_.pop_front();
  ++audit_completed_;
  audit_frame_conservation();
  cw_ = phy_.cw_min;
  backoff_slots_ = -1;
  if (queue_.empty()) {
    state_ = State::kIdle;
  } else {
    start_contention();
  }
}

void CsmaMac::send_ack(net::NodeId to) {
  // ACKs are sent a SIFS after reception, without carrier sense — they have
  // priority over contending stations. If we are busy transmitting at that
  // instant, the ACK is skipped (sender will retry).
  sim_->schedule_in(phy_.sifs, [this, to] {
    if (!alive_ || transmitting_) return;
    // Preempt whatever contention was in progress.
    difs_timer_.cancel();
    slot_timer_.cancel();
    transmitting_ = true;
    pending_ack_tx_ = true;
    for (auto& [txp, st] : arrivals_) st.corrupt = true;
    update_radio_state();
    net::Frame ack;
    ack.src = id_;
    ack.dst = to;
    ack.bytes = 0;
    const sim::Time airtime = phy_.ack_airtime();
    const TransmissionPtr ack_tx =
        channel_->begin_transmission(id_, ack, FrameKind::kAck, airtime);
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacTxStart, id_, to, ack_tx->id,
                   0);
    ++stats_.acks_sent;
    tx_end_event_ = sim_->schedule_in(airtime, [this] { on_tx_end(); });
  });
}

void CsmaMac::arrival_start(const TransmissionPtr& tx, bool decodable) {
  if (!alive_) return;
  const bool was_busy = medium_busy();
  // Overlap with anything already arriving corrupts both (no capture).
  const bool corrupt = transmitting_ || active_arrivals_ > 0;
  for (auto& [txp, st] : arrivals_) {
    if (!st.corrupt && st.decodable) {
      ++stats_.arrivals_corrupted;
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacCollision, id_, txp->src,
                     txp->id, 0);
    }
    st.corrupt = true;
  }
  if (corrupt && decodable) {
    ++stats_.arrivals_corrupted;
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacCollision, id_, tx->src,
                   tx->id, 0);
  }
  arrivals_.emplace(tx.get(), ArrivalState{corrupt, decodable});
  ++active_arrivals_;
  WSN_AUDIT_CHECK(
      arrivals_.size() == static_cast<std::size_t>(active_arrivals_),
      "arrival ledger out of sync with active-arrival count");
  update_radio_state();
  if (!was_busy) medium_became_busy();
}

void CsmaMac::arrival_end(const TransmissionPtr& tx) {
  if (!alive_) return;
  auto it = arrivals_.find(tx.get());
  if (it == arrivals_.end()) return;  // node was down at arrival start
  const bool deliverable =
      it->second.decodable && !it->second.corrupt && !tx->aborted;
  arrivals_.erase(it);
  --active_arrivals_;
  WSN_AUDIT_CHECK(active_arrivals_ >= 0,
                  "more arrival ends than arrival starts");
  update_radio_state();
  if (deliverable) deliver(*tx);
  if (!medium_busy()) medium_became_idle();
}

void CsmaMac::deliver(const Transmission& tx) {
  const net::Frame& f = tx.frame;
  if (tx.kind == FrameKind::kAck) {
    if (f.dst == id_ && state_ == State::kWaitAck && !queue_.empty() &&
        queue_.front().frame.dst == f.src) {
      ack_timer_.cancel();
      finish_current(true);
    }
    return;
  }
  if (f.dst != id_ && f.dst != net::kBroadcast) return;  // overheard only
  if (f.dst == id_) send_ack(f.src);
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacRx, id_, f.src, tx.id, f.bytes);
  ++stats_.frames_delivered;
  if (user_ != nullptr) user_->mac_receive(f);
}

}  // namespace wsn::mac
