// PHY / MAC timing and energy constants.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace wsn::mac {

/// Radio power draw, following the paper's modified ns-2 energy model
/// (Sensoria WINS NG-inspired): idle ≈ 10% of receive power, receive ≈ 60%
/// of transmit power.
struct EnergyParams {
  double tx_watts = 0.660;
  double rx_watts = 0.395;
  double idle_watts = 0.035;
};

/// 802.11-DSSS-like MAC/PHY parameters at the paper's 1.6 Mbps.
///
/// The paper used ns-2's modified 802.11 MAC; exact ns-2-era constants are
/// not printed there, so we use standard DSSS values. They set the absolute
/// energy/delay scale but not the greedy-vs-opportunistic comparison.
struct PhyParams {
  double bitrate_bps = 1.6e6;
  sim::Time slot = sim::Time::micros(20);
  sim::Time sifs = sim::Time::micros(10);
  sim::Time difs = sim::Time::micros(50);
  sim::Time preamble = sim::Time::micros(192);  ///< PHY preamble + PLCP header
  sim::Time propagation = sim::Time::micros(1);
  std::uint32_t cw_min = 31;
  std::uint32_t cw_max = 1023;
  int max_retries = 5;           ///< retransmissions for unicast frames
  std::uint32_t mac_header_bytes = 28;
  std::uint32_t ack_bytes = 14;
  std::size_t queue_limit = 64;  ///< outgoing frame queue depth

  /// Airtime of a frame whose MAC payload is `payload_bytes`.
  [[nodiscard]] sim::Time frame_airtime(std::uint32_t payload_bytes) const {
    const double bits =
        static_cast<double>(payload_bytes + mac_header_bytes) * 8.0;
    return preamble + sim::Time::seconds(bits / bitrate_bps);
  }

  [[nodiscard]] sim::Time ack_airtime() const {
    return preamble +
           sim::Time::seconds(static_cast<double>(ack_bytes) * 8.0 / bitrate_bps);
  }

  /// How long a unicast sender waits for the ACK before retrying.
  [[nodiscard]] sim::Time ack_timeout() const {
    return sifs + ack_airtime() + propagation * 2 + slot * 4;
  }
};

}  // namespace wsn::mac
