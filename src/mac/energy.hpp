// Per-node radio energy accounting.
#pragma once

#include "mac/params.hpp"
#include "sim/audit.hpp"
#include "sim/time.hpp"

namespace wsn::mac {

/// Radio power states, in increasing priority: a transmitting radio is
/// charged TX power even while frames arrive (half duplex).
enum class RadioState { kOff = 0, kIdle, kRx, kTx };

/// Integrates power draw over radio-state residence times.
///
/// Call `set_state` on every radio transition; call `accumulate_to` before
/// reading `joules` so the tail interval in the current state is charged.
class EnergyMeter {
 public:
  explicit EnergyMeter(const EnergyParams& params) : params_{params} {}

  void set_state(sim::Time now, RadioState s) {
    accumulate_to(now);
    state_ = s;
  }

  void accumulate_to(sim::Time now) {
    WSN_AUDIT_CHECK(now >= last_change_,
                    "energy accumulated to a time before the last transition");
    if (now > last_change_) {
      const double j = power(state_) * (now - last_change_).as_seconds();
      WSN_AUDIT_CHECK(j >= 0.0, "negative energy increment");
      joules_ += j;
      if (state_ == RadioState::kRx || state_ == RadioState::kTx) {
        active_joules_ += j;
      }
      last_change_ = now;
      WSN_AUDIT_CHECK(joules_ >= 0.0, "total joules went negative");
      WSN_AUDIT_CHECK(active_joules_ <= joules_ * (1.0 + 1e-12) + 1e-12,
                      "active energy exceeds total energy");
    }
  }

  [[nodiscard]] RadioState state() const { return state_; }

  /// Total energy consumed up to the last accumulate_to/set_state call.
  [[nodiscard]] double joules() const { return joules_; }

  /// Energy spent transmitting or receiving only (no idle floor). The
  /// communication-driven share that in-network aggregation can reduce.
  [[nodiscard]] double active_joules() const { return active_joules_; }

  [[nodiscard]] double power(RadioState s) const {
    switch (s) {
      case RadioState::kOff: return 0.0;
      case RadioState::kIdle: return params_.idle_watts;
      case RadioState::kRx: return params_.rx_watts;
      case RadioState::kTx: return params_.tx_watts;
    }
    return 0.0;
  }

 private:
  EnergyParams params_;
  RadioState state_ = RadioState::kIdle;
  sim::Time last_change_ = sim::Time::zero();
  double joules_ = 0.0;
  double active_joules_ = 0.0;
};

}  // namespace wsn::mac
