// Slotted TDMA MAC (paper §4.2: "in a TDMA MAC, one might match the
// aggregation time to a multiple of the TDMA frame duration").
#pragma once

#include <cstdint>

#include "mac/mac_base.hpp"
#include "mac/params.hpp"
#include "sim/flat_map.hpp"
#include "sim/ring_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace wsn::mac {

/// TDMA schedule parameters. The default is a *global* round-robin
/// schedule — every node owns one slot per cycle, so there is no spatial
/// reuse but also no collision anywhere (appropriate for the paper's
/// 200 m × 200 m fields, where the carrier-sense diameter nearly covers
/// the field and two-hop slot reuse would buy little).
struct TdmaParams {
  double bitrate_bps = 1.6e6;
  /// Largest payload one slot can carry; the slot length is derived from
  /// it (preamble + payload airtime + SIFS + ACK + guard).
  std::uint32_t max_payload_bytes = 160;
  sim::Time guard = sim::Time::micros(20);
  sim::Time sifs = sim::Time::micros(10);
  sim::Time preamble = sim::Time::micros(192);
  std::uint32_t mac_header_bytes = 28;
  std::uint32_t ack_bytes = 14;
  int max_retries = 2;           ///< unicast resend attempts (next cycles)
  std::size_t queue_limit = 64;

  [[nodiscard]] sim::Time payload_airtime(std::uint32_t bytes) const {
    const double bits = static_cast<double>(bytes + mac_header_bytes) * 8.0;
    return preamble + sim::Time::seconds(bits / bitrate_bps);
  }
  [[nodiscard]] sim::Time ack_airtime() const {
    return preamble +
           sim::Time::seconds(static_cast<double>(ack_bytes) * 8.0 / bitrate_bps);
  }
  /// One slot: data + SIFS + ACK + guard.
  [[nodiscard]] sim::Time slot_duration() const {
    return payload_airtime(max_payload_bytes) + sifs + ack_airtime() + guard;
  }
};

/// Collision-free slotted MAC. Node `id` owns slot `id` of every cycle of
/// `num_slots` slots; in its slot it transmits the head of its queue
/// (fragmenting is the upper layer's problem — oversized frames are sent
/// anyway in a stretched slot, which is safe because the schedule is
/// global). Unicast frames are acknowledged within the slot and retried in
/// later cycles.
class TdmaMac final : public MacBase {
 public:
  TdmaMac(sim::Simulator& sim, Channel& channel, net::NodeId id,
          std::uint32_t num_slots, const TdmaParams& params,
          const EnergyParams& energy);

  void send(net::Frame frame) override;
  void set_alive(bool alive) override;

  void arrival_start(const TransmissionPtr& tx, bool decodable) override;
  void arrival_end(const TransmissionPtr& tx) override;

  [[nodiscard]] sim::Time cycle_duration() const {
    return params_.slot_duration() * num_slots_;
  }

 private:
  struct Outgoing {
    net::Frame frame;
    int attempts = 0;
  };

  void on_slot_start();
  void schedule_next_slot();
  void on_tx_end();
  void update_radio_state();
  void deliver(const Transmission& tx);

  TdmaParams params_;
  std::uint32_t num_slots_;
  sim::RingQueue<Outgoing> queue_;

  bool transmitting_ = false;
  bool awaiting_ack_ = false;
  bool ack_tx_in_progress_ = false;
  TransmissionPtr outgoing_tx_;
  int active_arrivals_ = 0;
  sim::FlatMap<const Transmission*, bool> arrivals_;  // -> decodable

  sim::Timer slot_timer_;
  sim::EventHandle tx_end_event_;
};

}  // namespace wsn::mac
