// CSMA/CA MAC with DCF-style backoff, broadcast and acked unicast.
#pragma once

#include <cstdint>

#include "mac/mac_base.hpp"
#include "mac/params.hpp"
#include "net/types.hpp"
#include "sim/flat_map.hpp"
#include "sim/random.hpp"
#include "sim/ring_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace wsn::mac {

/// Per-node 802.11-flavoured MAC.
///
/// Simplifications vs the full standard (documented in DESIGN.md): always
/// backs off before transmitting, no RTS/CTS, no virtual carrier sense
/// (NAV), no EIFS. Unicast frames are acknowledged and retried up to
/// `max_retries`; broadcast frames are fire-once.
class CsmaMac final : public MacBase {
 public:
  CsmaMac(sim::Simulator& sim, Channel& channel, net::NodeId id,
          const PhyParams& phy, const EnergyParams& energy, sim::Rng rng);

  void send(net::Frame frame) override;
  void set_alive(bool alive) override;

  void arrival_start(const TransmissionPtr& tx, bool decodable) override;
  void arrival_end(const TransmissionPtr& tx) override;

 private:
  enum class State {
    kIdle,        ///< nothing to send
    kContend,     ///< DIFS + backoff countdown in progress (or waiting for idle)
    kTransmit,    ///< frame on the air
    kWaitAck,     ///< unicast sent, ACK pending
  };

  struct Outgoing {
    net::Frame frame;
    int attempts = 0;
  };

  [[nodiscard]] bool medium_busy() const {
    return transmitting_ || active_arrivals_ > 0;
  }
  void update_radio_state();
  void medium_became_busy();
  void medium_became_idle();
  void start_contention();
  void on_difs_elapsed();
  void on_slot_elapsed();
  void start_transmission();
  void on_tx_end();
  void on_ack_timeout();
  void finish_current(bool success);
  void send_ack(net::NodeId to);
  void deliver(const Transmission& tx);
  [[nodiscard]] std::uint32_t draw_backoff();

  PhyParams phy_;
  sim::Rng rng_;

  State state_ = State::kIdle;
  sim::RingQueue<Outgoing> queue_;
  std::uint32_t cw_;
  std::int32_t backoff_slots_ = -1;  ///< -1: not drawn yet for this attempt

  bool transmitting_ = false;
  TransmissionPtr outgoing_tx_;       ///< in-flight frame (for abort)
  bool pending_ack_tx_ = false;       ///< an ACK is scheduled to transmit

  int active_arrivals_ = 0;
  // In-flight arrivals at this radio. Flat map: a handful of concurrent
  // arrivals at most, keyed by transmission identity; pointer order is
  // fine because every use is a lookup or an order-insensitive flag sweep.
  struct ArrivalState {
    bool corrupt = false;
    bool decodable = true;
  };
  sim::FlatMap<const Transmission*, ArrivalState> arrivals_;

  sim::Timer difs_timer_;
  sim::Timer slot_timer_;
  sim::Timer ack_timer_;
  sim::EventHandle tx_end_event_;

  // Frame-conservation ledger (audit builds check it; counters are cheap
  // enough to keep unconditionally so the ABI does not fork on WSN_AUDIT).
  // Invariant: accepted == completed + queue_.size() at every quiescent
  // point, i.e. every accepted frame is eventually delivered-or-dropped.
  std::uint64_t audit_accepted_ = 0;   ///< frames admitted to the queue
  std::uint64_t audit_completed_ = 0;  ///< acked, broadcast-sent, or dropped
  void audit_frame_conservation() const;
};

}  // namespace wsn::mac
