#include "mac/channel.hpp"

#include <utility>

#include "mac/mac_base.hpp"
#include "sim/audit.hpp"

namespace wsn::mac {

TransmissionPtr Channel::begin_transmission(net::NodeId src, net::Frame frame,
                                            FrameKind kind,
                                            sim::Time airtime) {
  WSN_AUDIT_CHECK(airtime > sim::Time::zero(),
                  "transmission with non-positive airtime");
  WSN_AUDIT_CHECK(macs_[src] != nullptr && macs_[src]->alive(),
                  "transmission started by a detached or dead node");
  auto tx = std::make_shared<Transmission>();
  tx->frame = std::move(frame);
  tx->kind = kind;
  tx->start = sim_->now();
  tx->end = tx->start + airtime;
  tx->id = next_tx_id_++;

  // Everyone within carrier-sense range hears the transmission (and pays
  // receive energy for it); only nodes within radio range can decode it.
  for (net::NodeId nb : topo_->audible(src)) {
    MacBase* mac = macs_[nb];
    if (mac == nullptr || !mac->alive()) continue;
    const bool decodable = topo_->in_range(src, nb);
    sim_->schedule_in(propagation_,
                      [mac, tx, decodable] { mac->arrival_start(tx, decodable); });
    sim_->schedule_in(propagation_ + airtime,
                      [mac, tx] { mac->arrival_end(tx); });
  }
  return tx;
}

}  // namespace wsn::mac
