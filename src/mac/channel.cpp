#include "mac/channel.hpp"

#include <utility>

#include "mac/mac_base.hpp"
#include "sim/audit.hpp"
#include "trace/trace.hpp"

namespace wsn::mac {

TransmissionPtr Channel::begin_transmission(net::NodeId src, net::Frame frame,
                                            FrameKind kind,
                                            sim::Time airtime) {
  WSN_AUDIT_CHECK(airtime > sim::Time::zero(),
                  "transmission with non-positive airtime");
  WSN_AUDIT_CHECK(macs_[src] != nullptr && macs_[src]->alive(),
                  "transmission started by a detached or dead node");
  auto tx = sim_->arena().make<Transmission>();
  tx->frame = std::move(frame);
  tx->kind = kind;
  tx->start = sim_->now();
  tx->end = tx->start + airtime;
  tx->id = next_tx_id_++;
  tx->src = src;

  // Two batched events per transmission, however many radios hear it: one
  // sweep delivering every arrival start, one delivering every arrival end.
  sim_->schedule_in(propagation_, [this, tx] { sweep_arrival_starts(tx); });
  sim_->schedule_in(propagation_ + airtime,
                    [this, tx] { sweep_arrival_ends(tx); });
  return tx;
}

void Channel::sweep_arrival_starts(const TransmissionPtr& tx) {
  // Everyone within carrier-sense range hears the transmission (and pays
  // receive energy for it); only the decodable prefix of the audible list
  // (== nodes within radio range) can decode it. Liveness is sampled here,
  // at delivery time.
  const auto audible = topo_->audible(tx->src);
  const std::size_t prefix = topo_->decodable_prefix(tx->src);
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kChannelSweep, tx->src,
                 trace::kNoPeer, tx->id, audible.size());
  for (std::size_t i = 0; i < audible.size(); ++i) {
    MacBase* mac = macs_[audible[i]];
    if (mac == nullptr || !mac->alive()) continue;
    mac->arrival_start(tx, /*decodable=*/i < prefix);
  }
}

void Channel::sweep_arrival_ends(const TransmissionPtr& tx) {
  for (net::NodeId nb : topo_->audible(tx->src)) {
    MacBase* mac = macs_[nb];
    if (mac == nullptr || !mac->alive()) continue;
    mac->arrival_end(tx);
  }
}

}  // namespace wsn::mac
