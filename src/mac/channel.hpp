// Shared wireless medium: delivers transmissions to in-range radios.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/simulator.hpp"

namespace wsn::mac {

class MacBase;

/// Frame classes on the air.
enum class FrameKind : std::uint8_t { kData, kAck };

/// One transmission in flight. Shared between the channel and every
/// receiver so a late abort (transmitter dies mid-frame) corrupts all
/// pending receptions.
struct Transmission {
  net::Frame frame;
  FrameKind kind = FrameKind::kData;
  sim::Time start;
  sim::Time end;
  bool aborted = false;
  std::uint64_t id = 0;
  net::NodeId src = 0;  ///< transmitter; keys the arrival sweeps
};

using TransmissionPtr = std::shared_ptr<Transmission>;

/// Broadcast medium over a unit-disk topology.
///
/// When a MAC starts transmitting, every live in-range radio sees the
/// carrier for the frame's airtime; overlapping arrivals at a receiver
/// corrupt each other (no capture). Interference range equals radio range.
class Channel {
 public:
  Channel(sim::Simulator& sim, const net::Topology& topo,
          sim::Time propagation = sim::Time::micros(1))
      : sim_{&sim},
        topo_{&topo},
        propagation_{propagation},
        macs_(topo.node_count(), nullptr) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers the MAC serving `id`. Must be called for every node before
  /// the simulation starts.
  void attach(net::NodeId id, MacBase* mac) { macs_[id] = mac; }

  /// Starts a transmission from `src`. Exactly TWO events are scheduled —
  /// an arrival-start sweep after the propagation delay and an arrival-end
  /// sweep one airtime later — each delivering to every audible radio in
  /// the topology's partitioned audible-list order (decodable neighbours
  /// first, then carrier-sense-only, both by ascending id). Dead or
  /// detached radios are skipped at sweep (delivery) time. Returns the
  /// in-flight record so the transmitter can abort it (node failure
  /// mid-frame).
  TransmissionPtr begin_transmission(net::NodeId src, net::Frame frame,
                                     FrameKind kind, sim::Time airtime);

  [[nodiscard]] const net::Topology& topology() const { return *topo_; }
  [[nodiscard]] std::uint64_t transmissions_started() const {
    return next_tx_id_ - 1;
  }

 private:
  void sweep_arrival_starts(const TransmissionPtr& tx);
  void sweep_arrival_ends(const TransmissionPtr& tx);

  sim::Simulator* sim_;
  const net::Topology* topo_;
  sim::Time propagation_;
  std::vector<MacBase*> macs_;
  std::uint64_t next_tx_id_ = 1;
};

}  // namespace wsn::mac
