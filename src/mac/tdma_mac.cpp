#include "mac/tdma_mac.hpp"

#include <utility>

namespace wsn::mac {

TdmaMac::TdmaMac(sim::Simulator& sim, Channel& channel, net::NodeId id,
                 std::uint32_t num_slots, const TdmaParams& params,
                 const EnergyParams& energy)
    : MacBase{sim, channel, id, energy},
      params_{params},
      num_slots_{num_slots},
      slot_timer_{sim, [this] { on_slot_start(); }} {
  slot_timer_.arm(params_.slot_duration() * id);
}

void TdmaMac::schedule_next_slot() { slot_timer_.arm(cycle_duration()); }

void TdmaMac::send(net::Frame frame) {
  if (!alive_) return;
  if (queue_.size() >= params_.queue_limit) {
    ++stats_.drops_queue_full;
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacDrop, id_, frame.dst,
                   trace::DropReason::kQueueFull, queue_.size());
    return;
  }
  frame.src = id_;
  queue_.push_back(Outgoing{std::move(frame), 0});
}

void TdmaMac::set_alive(bool alive) {
  if (alive == alive_) return;
  alive_ = alive;
  if (!alive) {
    if (outgoing_tx_) outgoing_tx_->aborted = true;
    outgoing_tx_.reset();
    transmitting_ = false;
    awaiting_ack_ = false;
    ack_tx_in_progress_ = false;
    queue_.clear();
    arrivals_.clear();
    active_arrivals_ = 0;
    slot_timer_.cancel();
    if (tx_end_event_.valid()) {
      sim_->cancel(tx_end_event_);
      tx_end_event_ = sim::EventHandle{};
    }
    set_radio_state(RadioState::kOff);
  } else {
    set_radio_state(RadioState::kIdle);
    // Rejoin the schedule at our next slot boundary.
    const auto cycle = cycle_duration().as_nanos();
    const auto offset = (params_.slot_duration() * id_).as_nanos();
    const auto now = sim_->now().as_nanos();
    const auto phase = (now - offset) % cycle;
    slot_timer_.arm(sim::Time::nanos(phase == 0 ? 0 : cycle - phase));
  }
}

void TdmaMac::on_slot_start() {
  schedule_next_slot();
  if (!alive_ || queue_.empty() || transmitting_) return;

  Outgoing& out = queue_.front();
  transmitting_ = true;
  for (auto& [txp, ok] : arrivals_) ok = false;  // half duplex corrupts rx
  update_radio_state();

  const sim::Time airtime = params_.payload_airtime(out.frame.bytes);
  outgoing_tx_ =
      channel_->begin_transmission(id_, out.frame, FrameKind::kData, airtime);
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacTxStart, id_, out.frame.dst,
                 outgoing_tx_->id, out.frame.bytes);
  ++stats_.frames_sent;
  stats_.bytes_sent += out.frame.bytes;
  if (out.attempts > 0) ++stats_.retries;
  awaiting_ack_ = out.frame.dst != net::kBroadcast;
  tx_end_event_ = sim_->schedule_in(airtime, [this] { on_tx_end(); });
}

void TdmaMac::on_tx_end() {
  tx_end_event_ = sim::EventHandle{};
  transmitting_ = false;
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacTxEnd, id_, trace::kNoPeer,
                 outgoing_tx_ ? outgoing_tx_->id : 0, 0);
  outgoing_tx_.reset();
  update_radio_state();

  if (ack_tx_in_progress_) {  // the frame that ended was an ACK we sent
    ack_tx_in_progress_ = false;
    return;
  }
  if (queue_.empty()) return;
  Outgoing& out = queue_.front();
  if (out.frame.dst == net::kBroadcast) {
    queue_.pop_front();
    return;
  }
  // Unicast: wait out the ACK window at the end of our slot.
  const sim::Time window = params_.sifs + params_.ack_airtime() +
                           params_.guard + sim::Time::micros(4);
  sim_->schedule_in(window, [this] {
    if (!alive_ || !awaiting_ack_ || queue_.empty()) return;
    awaiting_ack_ = false;
    Outgoing& head = queue_.front();
    if (++head.attempts > params_.max_retries) {
      ++stats_.drops_retry_exhausted;
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacDrop, id_, head.frame.dst,
                     trace::DropReason::kRetryExhausted, head.attempts);
      if (user_ != nullptr) user_->mac_send_failed(head.frame);
      queue_.pop_front();
    }
    // else: the frame stays queued for our next slot.
  });
}

void TdmaMac::update_radio_state() {
  RadioState s = RadioState::kIdle;
  if (!alive_) {
    s = RadioState::kOff;
  } else if (transmitting_) {
    s = RadioState::kTx;
  } else if (active_arrivals_ > 0) {
    s = RadioState::kRx;
  }
  set_radio_state(s);
}

void TdmaMac::arrival_start(const TransmissionPtr& tx, bool decodable) {
  if (!alive_) return;
  // The global schedule is collision-free; overlap can still occur around
  // ACKs of a frame we cannot decode, so treat overlaps as corruption.
  const bool clean = !transmitting_ && active_arrivals_ == 0;
  if (!clean) {
    ++stats_.arrivals_corrupted;
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacCollision, id_, tx->src,
                   tx->id, 0);
    for (auto& [txp, ok] : arrivals_) ok = false;
  }
  arrivals_.emplace(tx.get(), decodable && clean);
  ++active_arrivals_;
  update_radio_state();
}

void TdmaMac::arrival_end(const TransmissionPtr& tx) {
  if (!alive_) return;
  auto it = arrivals_.find(tx.get());
  if (it == arrivals_.end()) return;
  const bool deliverable = it->second && !tx->aborted;
  arrivals_.erase(it);
  --active_arrivals_;
  update_radio_state();
  if (deliverable) deliver(*tx);
}

void TdmaMac::deliver(const Transmission& tx) {
  const net::Frame& f = tx.frame;
  if (tx.kind == FrameKind::kAck) {
    if (f.dst == id_ && awaiting_ack_ && !queue_.empty()) {
      awaiting_ack_ = false;
      if (user_ != nullptr) user_->mac_send_succeeded(queue_.front().frame);
      queue_.pop_front();
    }
    return;
  }
  if (f.dst != id_ && f.dst != net::kBroadcast) return;
  if (f.dst == id_) {
    // Acknowledge inside the sender's slot, a SIFS after the data.
    sim_->schedule_in(params_.sifs, [this, to = f.src] {
      if (!alive_ || transmitting_) return;
      transmitting_ = true;
      ack_tx_in_progress_ = true;
      update_radio_state();
      net::Frame ack;
      ack.src = id_;
      ack.dst = to;
      ack.bytes = 0;
      const sim::Time airtime = params_.ack_airtime();
      const TransmissionPtr ack_tx =
          channel_->begin_transmission(id_, ack, FrameKind::kAck, airtime);
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacTxStart, id_, to, ack_tx->id,
                     0);
      ++stats_.acks_sent;
      tx_end_event_ = sim_->schedule_in(airtime, [this] { on_tx_end(); });
    });
  }
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kMacRx, id_, f.src, tx.id, f.bytes);
  ++stats_.frames_delivered;
  if (user_ != nullptr) user_->mac_receive(f);
}

}  // namespace wsn::mac
