#include "core/greedy_node.hpp"

#include <algorithm>

#include "agg/set_cover.hpp"
#include "sim/logger.hpp"
#include "trace/trace.hpp"

namespace wsn::core {

using diffusion::DataItem;
using diffusion::EnergyCost;
using diffusion::kInfiniteCost;
using diffusion::MsgId;
using diffusion::SourceId;

void GreedyNode::sink_on_new_exploratory(MsgId id) {
  // Delay the decision by T_p; by then the ICMs for this event have
  // propagated down the existing tree.
  sim_->schedule_in(params_.t_p, [this, id] {
    if (mac_->alive()) propagate_reinforcement(id);
  });
}

net::NodeId GreedyNode::choose_upstream(MsgId id) const {
  EnergyCost best_direct = kInfiniteCost;
  net::NodeId direct_nb = net::kNoNode;
  auto it = expl_cache().find(id);
  if (it != expl_cache().end()) {
    const EnergyCost my_cost = it->second.my_cost();
    for (const auto& [nb, cost] : it->second.senders) {
      if (unusable_upstream(nb)) continue;
      if (cost >= my_cost) continue;  // strict descent: chains cannot loop
      // Delivering source→nb cost `cost`; nb→me is one more transmission.
      if (cost + 1 < best_direct) {
        best_direct = cost + 1;
        direct_nb = nb;
      }
    }
  }

  EnergyCost best_graft = kInfiniteCost;
  net::NodeId graft_nb = net::kNoNode;
  auto icm_it = icm_cache().find(id);
  if (icm_it != icm_cache().end() && icm_it->second.best_sender != net::kNoNode &&
      !unusable_upstream(icm_it->second.best_sender)) {
    best_graft = icm_it->second.best_c;
    graft_nb = icm_it->second.best_sender;
  }

  // Lowest energy wins; a tie goes to the exploratory path (paper §4.1).
  if (best_direct <= best_graft) return direct_nb;
  return graft_nb;
}

std::span<agg::WeightedSet> GreedyNode::claim_family_prefix(std::size_t n) {
  if (family_scratch_.size() < n) family_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    family_scratch_[i].elements.clear();  // capacity retained
    family_scratch_[i].weight = 0.0;
  }
  return {family_scratch_.data(), n};
}

void GreedyNode::flush_policy(const std::vector<DataItem>& outgoing,
                              std::span<const IncomingAgg> window,
                              FlushDecision& d) {
  // --- §4.2: price the outgoing aggregate via an event-level cover. ---
  if (!outgoing.empty()) {
    item_index_.clear();
    for (const DataItem& item : outgoing) {
      item_index_.try_emplace(item.key.packed(),
                              static_cast<std::uint32_t>(item_index_.size()));
    }
    const std::span<agg::WeightedSet> family =
        claim_family_prefix(window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
      const IncomingAgg& in = window[i];
      agg::WeightedSet& s = family[i];
      for (const DataItem& item : in.items) {
        auto idx = item_index_.find(item.key.packed());
        if (idx != item_index_.end()) s.elements.push_back(idx->second);
      }
      s.weight = static_cast<double>(in.cost);
    }
    const auto cover = agg::greedy_weighted_set_cover(
        family, static_cast<std::uint32_t>(item_index_.size()));
    if (cover.covered) {
      d.outgoing_cost = static_cast<EnergyCost>(cover.total_weight + 0.5) + 1;
    } else {
      // Should not happen (every pending item arrived in some window
      // aggregate); fall back to the conservative sum.
      double sum = 0.0;
      for (const auto& s : family) sum += s.weight;
      d.outgoing_cost = static_cast<EnergyCost>(sum + 0.5) + 1;
    }
  }

  // --- §4.3: truncation cover over *sources*, not events. ---
  if (!window.empty()) {
    source_index_.clear();
    for (const IncomingAgg& in : window) {
      for (const DataItem& item : in.items) {
        source_index_.try_emplace(
            item.key.source, static_cast<std::uint32_t>(source_index_.size()));
      }
    }
    const std::span<agg::WeightedSet> family =
        claim_family_prefix(window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
      const IncomingAgg& in = window[i];
      agg::WeightedSet& s = family[i];
      for (const DataItem& item : in.items) {
        s.elements.push_back(source_index_.at(item.key.source));
      }
      std::sort(s.elements.begin(), s.elements.end());
      s.elements.erase(std::unique(s.elements.begin(), s.elements.end()),
                       s.elements.end());
      // w* = w·|S*|/|S| preserves the initial cost ratio (paper §4.3).
      const double total = static_cast<double>(in.items.size());
      const double distinct = static_cast<double>(s.elements.size());
      s.weight = total > 0.0
                     ? static_cast<double>(in.cost) * distinct / total
                     : static_cast<double>(in.cost);
    }
    const auto cover = agg::greedy_weighted_set_cover(
        family, static_cast<std::uint32_t>(source_index_.size()));
    d.useful_neighbors.reserve(cover.chosen.size());
    for (std::size_t idx : cover.chosen) {
      d.useful_neighbors.push_back(window[idx].from);
    }
    if (sim::Logger::enabled(sim::LogLevel::kTrace)) {
      for (std::size_t i = 0; i < window.size(); ++i) {
        const bool chosen = std::find(cover.chosen.begin(), cover.chosen.end(),
                                      i) != cover.chosen.end();
        WSN_LOG_AT(sim::LogLevel::kTrace, sim_->now(), "greedy",
                   "node %u cover: from=%u items=%zu sources=%zu w=%.2f %s",
                   id(), window[i].from, window[i].items.size(),
                   family[i].elements.size(), family[i].weight,
                   chosen ? "CHOSEN" : "-");
      }
    }
    // set_cover picks each window entry at most once, but two entries can
    // share a sender; dedup only when duplicates are possible.
    if (d.useful_neighbors.size() > 1) {
      std::sort(d.useful_neighbors.begin(), d.useful_neighbors.end());
      d.useful_neighbors.erase(
          std::unique(d.useful_neighbors.begin(), d.useful_neighbors.end()),
          d.useful_neighbors.end());
    }
  }
}

void GreedyNode::on_new_exploratory(const ExplRecord& /*rec*/, MsgId id) {
  // Only sources already on the tree announce graft costs (paper §4.1).
  if (!is_active_source() || !has_data_gradient_out()) return;
  auto& icm = icm_record(id);
  if (icm.generated) return;
  icm.generated = true;

  // Give the flood a moment to deliver the cheapest copy before measuring
  // our delivery cost.
  sim_->schedule_in(params_.exploratory_jitter, [this, id] {
    if (!mac_->alive() || !has_data_gradient_out()) return;
    auto it = expl_cache().find(id);
    if (it == expl_cache().end()) return;
    const EnergyCost c = it->second.my_cost();
    if (c == kInfiniteCost) return;
    auto& rec_icm = icm_record(id);
    rec_icm.forwarded_c = std::min(rec_icm.forwarded_c, c);
    auto msg = make_msg<diffusion::IncrementalCostMsg>();
    msg->exploratory_id = id;
    msg->new_source = it->second.source;
    msg->cost_c = c;
    ++stats_.icm_sent;
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kIcmSend, this->id(),
                   trace::kNoPeer, id, c);
    send_to_data_gradients(std::move(msg), params_.control_bytes);
  });
}

void GreedyNode::handle_icm(const diffusion::IncrementalCostMsg& msg,
                            net::NodeId from) {
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kIcmRecv, id(), from,
                 msg.exploratory_id, msg.cost_c);
  auto& icm = icm_record(msg.exploratory_id);
  if (msg.cost_c < icm.best_c) {
    icm.best_c = msg.cost_c;
    icm.best_sender = from;
  }

  // Lower C to our own delivery cost for the same exploratory event
  // (paper §4.1: C = min(C, E from the cache)), then relay down the tree
  // if that improves on anything we already relayed.
  EnergyCost c = msg.cost_c;
  auto it = expl_cache().find(msg.exploratory_id);
  if (it != expl_cache().end()) c = std::min(c, it->second.my_cost());
  if (c < icm.forwarded_c && has_data_gradient_out()) {
    icm.forwarded_c = c;
    auto fwd = make_msg<diffusion::IncrementalCostMsg>();
    fwd->exploratory_id = msg.exploratory_id;
    fwd->new_source = msg.new_source;
    fwd->cost_c = c;
    ++stats_.icm_sent;
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kIcmSend, id(), trace::kNoPeer,
                   msg.exploratory_id, c);
    send_to_data_gradients(std::move(fwd), params_.control_bytes);
  }
}

}  // namespace wsn::core
