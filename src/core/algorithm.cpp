#include "core/algorithm.hpp"

namespace wsn::core {

std::unique_ptr<diffusion::DiffusionNode> make_diffusion_node(
    Algorithm algorithm, sim::Simulator& sim, mac::MacBase& mac,
    net::Vec2 position, const diffusion::DiffusionParams& params,
    sim::Rng rng, diffusion::MetricsHook* hook) {
  switch (algorithm) {
    case Algorithm::kOpportunistic:
      return std::make_unique<diffusion::OpportunisticNode>(
          sim, mac, position, params, rng, hook);
    case Algorithm::kGreedy:
      return std::make_unique<GreedyNode>(sim, mac, position, params, rng,
                                          hook);
  }
  return nullptr;
}

}  // namespace wsn::core
