// Algorithm selector + factory for the two diffusion instantiations.
#pragma once

#include <memory>
#include <string_view>

#include "core/greedy_node.hpp"
#include "diffusion/node.hpp"

namespace wsn::core {

/// Which aggregation-tree instantiation a node runs.
enum class Algorithm {
  kOpportunistic,  ///< baseline: low-latency tree, opportunistic aggregation
  kGreedy,         ///< the paper's greedy incremental tree (§4)
};

[[nodiscard]] constexpr std::string_view to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kOpportunistic: return "opportunistic";
    case Algorithm::kGreedy: return "greedy";
  }
  return "?";
}

/// Creates a protocol node of the requested kind.
std::unique_ptr<diffusion::DiffusionNode> make_diffusion_node(
    Algorithm algorithm, sim::Simulator& sim, mac::MacBase& mac,
    net::Vec2 position, const diffusion::DiffusionParams& params,
    sim::Rng rng, diffusion::MetricsHook* hook);

}  // namespace wsn::core
