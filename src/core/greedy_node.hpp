// Greedy aggregation — the paper's contribution (§4).
//
// A new instantiation of directed diffusion that constructs a greedy
// incremental tree: the first source reaches the sink over a lowest-energy
// path; every later source is grafted onto the existing tree at its
// closest point, discovered through incremental-cost messages. Outgoing
// aggregates are priced by a greedy weighted set cover over the incoming
// aggregates (§4.2), and inefficient paths are truncated by negatively
// reinforcing neighbours outside the source-level set cover (§4.3).
#pragma once

#include "agg/set_cover.hpp"
#include "diffusion/node.hpp"

namespace wsn::core {

class GreedyNode final : public diffusion::DiffusionNode {
 public:
  using DiffusionNode::DiffusionNode;

 protected:
  /// §4.1: the sink waits T_p before reinforcing, so incremental-cost
  /// messages get a chance to reveal a cheaper graft point.
  void sink_on_new_exploratory(diffusion::MsgId id) override;

  /// §4.1 local rule: reinforce whichever neighbour offered the event at
  /// the lowest energy cost — directly (exploratory, cost E+1) or via the
  /// existing tree (ICM, cost C). Ties favour the exploratory path.
  [[nodiscard]] net::NodeId choose_upstream(diffusion::MsgId id) const override;

  /// §4.2 aggregate pricing + §4.3 source-level truncation cover.
  void flush_policy(const std::vector<diffusion::DataItem>& outgoing,
                    std::span<const IncomingAgg> window,
                    FlushDecision& decision) override;

  /// §4.1: an on-tree source seeing another source's new exploratory event
  /// announces the graft cost down the tree.
  void on_new_exploratory(const ExplRecord& rec, diffusion::MsgId id) override;

  /// §4.1: on-tree nodes relay ICMs toward the sink, lowering C to their
  /// own delivery cost for the same exploratory event when that is smaller.
  void handle_icm(const diffusion::IncrementalCostMsg& msg,
                  net::NodeId from) override;

 private:
  // Set-cover scratch, reused across flushes (capacity retained) so
  // pricing an aggregate stops allocating once the fan-in is warm. The
  // family buffer is used live-prefix style: claim_family_prefix() hands
  // out the first `n` sets with their element vectors cleared but their
  // storage intact.
  sim::FlatMap<std::uint64_t, std::uint32_t> item_index_;
  sim::FlatMap<diffusion::SourceId, std::uint32_t> source_index_;
  std::vector<agg::WeightedSet> family_scratch_;
  [[nodiscard]] std::span<agg::WeightedSet> claim_family_prefix(std::size_t n);
};

}  // namespace wsn::core
