// Basic network-layer identifiers and the frame unit exchanged with the MAC.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

namespace wsn::net {

/// Dense node index within one simulated field.
using NodeId = std::uint32_t;

/// "No node" sentinel (invalid neighbour, unset parent, ...).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Link-layer broadcast address.
inline constexpr NodeId kBroadcast = kNoNode - 1;

/// Base class for anything carried as a frame payload. Payloads are
/// immutable once sent and shared between all receivers of a broadcast.
class Message {
 public:
  virtual ~Message() = default;

 protected:
  Message() = default;
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Link-layer service data unit handed to / delivered by the MAC.
///
/// `bytes` is the application payload size; the MAC adds its own header
/// bytes when computing airtime and energy.
struct Frame {
  NodeId src = kNoNode;
  NodeId dst = kBroadcast;
  std::uint32_t bytes = 0;
  MessagePtr payload;
};

}  // namespace wsn::net
