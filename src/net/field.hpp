// Random sensor-field generation (the paper's 200 m × 200 m square).
#pragma once

#include <cstddef>
#include <vector>

#include "net/vec2.hpp"
#include "sim/random.hpp"

namespace wsn::net {

/// Parameters for generating one random field.
struct FieldSpec {
  double side_m = 200.0;      ///< square side length
  std::size_t nodes = 50;     ///< node count
  double radio_range_m = 40.0;
  /// Carrier-sense (audible) range; the classic ns-2 WaveLAN CS/RX ratio
  /// is 550 m / 250 m = 2.2, scaled here to the 40 m sensor radio.
  double carrier_sense_range_m = 88.0;
};

/// Places `spec.nodes` points uniformly at random in the square.
std::vector<Vec2> generate_uniform_field(const FieldSpec& spec,
                                         sim::Rng& rng);

/// Places points uniformly but retries whole fields until the unit-disk
/// graph is connected (up to `max_attempts`; returns the last attempt
/// regardless, mirroring the paper's practice of averaging over random
/// fields that are connected with high probability at these densities).
std::vector<Vec2> generate_connected_field(const FieldSpec& spec,
                                           sim::Rng& rng,
                                           int max_attempts = 100);

}  // namespace wsn::net
