// Static node placement and unit-disk connectivity.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/types.hpp"
#include "net/vec2.hpp"

namespace wsn::net {

/// Immutable sensor-field layout: node positions plus unit-disk neighbour
/// lists for a fixed radio range. Built once per experiment run; liveness
/// (node failures) is tracked elsewhere, not here.
class Topology {
 public:
  /// Builds neighbour lists with a uniform grid (O(n) for uniform fields).
  ///
  /// `carrier_sense_range` is the distance out to which a transmission is
  /// still *audible* — it occupies the channel, costs receive energy and
  /// can corrupt receptions — even though it is only decodable within
  /// `radio_range` (ns-2's CSThresh vs RXThresh distinction; the classic
  /// WaveLAN ratio is 550 m / 250 m = 2.2). Pass 0 to make them equal.
  Topology(std::vector<Vec2> positions, double radio_range,
           double carrier_sense_range = 0.0);

  [[nodiscard]] std::size_t node_count() const { return positions_.size(); }
  [[nodiscard]] double radio_range() const { return range_; }
  [[nodiscard]] double carrier_sense_range() const { return cs_range_; }

  [[nodiscard]] Vec2 position(NodeId id) const { return positions_[id]; }
  [[nodiscard]] const std::vector<Vec2>& positions() const {
    return positions_;
  }

  /// Neighbours of `id` (nodes strictly within radio range, excluding
  /// `id` itself), sorted by id.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const {
    return {neighbor_lists_[id].data(), neighbor_lists_[id].size()};
  }

  /// Nodes within carrier-sense range of `id` (superset of neighbors).
  ///
  /// Partitioned for the channel hot path: the first `decodable_prefix(id)`
  /// entries are exactly `neighbors(id)` (in radio range, sorted by id);
  /// the rest are carrier-sense-only nodes, also sorted by id. A receiver's
  /// decodability is therefore a position test, not a distance test.
  [[nodiscard]] std::span<const NodeId> audible(NodeId id) const {
    return {audible_lists_[id].data(), audible_lists_[id].size()};
  }

  /// Number of leading `audible(id)` entries that are within radio range.
  [[nodiscard]] std::size_t decodable_prefix(NodeId id) const {
    return neighbor_lists_[id].size();
  }

  [[nodiscard]] bool in_range(NodeId a, NodeId b) const;

  [[nodiscard]] double distance_between(NodeId a, NodeId b) const {
    return distance(positions_[a], positions_[b]);
  }

  /// Mean neighbour count — the paper's "radio density".
  [[nodiscard]] double average_degree() const;

  /// True iff every node can reach every other (ignoring liveness).
  [[nodiscard]] bool connected() const;

  /// Hop distance between two nodes via BFS; -1 if unreachable.
  [[nodiscard]] int hop_distance(NodeId from, NodeId to) const;

 private:
  [[nodiscard]] std::size_t hop_count_reachable_from_0() const;

  std::vector<Vec2> positions_;
  double range_;
  double cs_range_;
  std::vector<std::vector<NodeId>> neighbor_lists_;
  std::vector<std::vector<NodeId>> audible_lists_;
};

}  // namespace wsn::net
