#include "net/field.hpp"

#include "net/topology.hpp"

namespace wsn::net {

std::vector<Vec2> generate_uniform_field(const FieldSpec& spec,
                                         sim::Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(spec.nodes);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    pts.push_back({rng.uniform(0.0, spec.side_m), rng.uniform(0.0, spec.side_m)});
  }
  return pts;
}

std::vector<Vec2> generate_connected_field(const FieldSpec& spec,
                                           sim::Rng& rng, int max_attempts) {
  std::vector<Vec2> pts;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    pts = generate_uniform_field(spec, rng);
    if (Topology{pts, spec.radio_range_m}.connected()) return pts;
  }
  return pts;
}

}  // namespace wsn::net
