// 2-D geometry for node placement.
#pragma once

#include <cmath>

namespace wsn::net {

/// Point / vector in the plane, metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Distance from point `p` to the segment [a, b].
[[nodiscard]] inline double distance_to_segment(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len_sq = ab.x * ab.x + ab.y * ab.y;
  if (len_sq <= 0.0) return distance(p, a);
  double t = ((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len_sq;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return distance(p, {a.x + ab.x * t, a.y + ab.y * t});
}

[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Axis-aligned rectangle [x0,x1] × [y0,y1]; used for placement regions
/// (e.g. the paper's 80×80 m source corner).
struct Rect {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  [[nodiscard]] constexpr double width() const { return x1 - x0; }
  [[nodiscard]] constexpr double height() const { return y1 - y0; }

  /// Euclidean distance from `p` to the rectangle (0 when inside).
  [[nodiscard]] double distance_to(Vec2 p) const {
    const double dx = p.x < x0 ? x0 - p.x : (p.x > x1 ? p.x - x1 : 0.0);
    const double dy = p.y < y0 ? y0 - p.y : (p.y > y1 ? p.y - y1 : 0.0);
    return std::hypot(dx, dy);
  }
};

}  // namespace wsn::net
