#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <unordered_map>

namespace wsn::net {
namespace {

// Grid cell key for spatial binning.
std::int64_t cell_key(std::int64_t cx, std::int64_t cy) {
  return (cx << 32) ^ (cy & 0xffffffff);
}

}  // namespace

Topology::Topology(std::vector<Vec2> positions, double radio_range,
                   double carrier_sense_range)
    : positions_{std::move(positions)},
      range_{radio_range},
      cs_range_{carrier_sense_range > 0.0 ? carrier_sense_range : radio_range} {
  assert(range_ > 0.0);
  assert(cs_range_ >= range_);
  const std::size_t n = positions_.size();
  neighbor_lists_.resize(n);
  audible_lists_.resize(n);
  if (n == 0) return;

  // Bin nodes into cs_range×cs_range cells; audible nodes can only be in
  // the 3×3 block of cells around a node's cell.
  std::unordered_map<std::int64_t, std::vector<NodeId>> grid;
  grid.reserve(n);
  auto cell_of = [this](Vec2 p) {
    return std::pair{static_cast<std::int64_t>(std::floor(p.x / cs_range_)),
                     static_cast<std::int64_t>(std::floor(p.y / cs_range_))};
  };
  for (NodeId i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(positions_[i]);
    grid[cell_key(cx, cy)].push_back(i);
  }

  const double range_sq = range_ * range_;
  const double cs_sq = cs_range_ * cs_range_;
  std::vector<NodeId> cs_only;  // audible but not decodable, rebuilt per node
  for (NodeId i = 0; i < n; ++i) {
    cs_only.clear();
    const auto [cx, cy] = cell_of(positions_[i]);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid.find(cell_key(cx + dx, cy + dy));
        if (it == grid.end()) continue;
        for (NodeId j : it->second) {
          if (j == i) continue;
          const double d_sq = distance_sq(positions_[i], positions_[j]);
          if (d_sq < range_sq) {
            neighbor_lists_[i].push_back(j);
          } else if (d_sq < cs_sq) {
            cs_only.push_back(j);
          }
        }
      }
    }
    // audible(i) is partitioned: decodable prefix (== neighbors(i), sorted
    // by id) followed by carrier-sense-only nodes, sorted by id.
    std::sort(neighbor_lists_[i].begin(), neighbor_lists_[i].end());
    std::sort(cs_only.begin(), cs_only.end());
    audible_lists_[i].reserve(neighbor_lists_[i].size() + cs_only.size());
    audible_lists_[i] = neighbor_lists_[i];
    audible_lists_[i].insert(audible_lists_[i].end(), cs_only.begin(),
                             cs_only.end());
  }
}

bool Topology::in_range(NodeId a, NodeId b) const {
  if (a == b) return false;
  return distance_sq(positions_[a], positions_[b]) < range_ * range_;
}

double Topology::average_degree() const {
  if (positions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& nl : neighbor_lists_) total += nl.size();
  return static_cast<double>(total) / static_cast<double>(positions_.size());
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  return hop_count_reachable_from_0() == positions_.size();
}

std::size_t Topology::hop_count_reachable_from_0() const {
  std::vector<char> seen(positions_.size(), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  std::size_t count = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : neighbor_lists_[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  return count;
}

int Topology::hop_distance(NodeId from, NodeId to) const {
  if (from == to) return 0;
  std::vector<int> dist(positions_.size(), -1);
  std::queue<NodeId> q;
  q.push(from);
  dist[from] = 0;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : neighbor_lists_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        if (v == to) return dist[v];
        q.push(v);
      }
    }
  }
  return -1;
}

}  // namespace wsn::net
