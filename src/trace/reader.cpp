#include "trace/reader.hpp"

#include <cstdio>
#include <cstring>

namespace wsn::trace {
namespace {

constexpr char kMagic[8] = {'W', 'S', 'N', 'T', 'R', 'C', '0', '1'};
constexpr std::size_t kHeaderBytes = sizeof kMagic + 8 + 8;

std::uint64_t read_u64_le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

TraceReader::TraceReader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error_ = "cannot open " + path;
    return;
  }
  unsigned char chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    data_.insert(data_.end(), chunk, chunk + n);
  }
  std::fclose(f);
  if (data_.size() < kHeaderBytes ||
      std::memcmp(data_.data(), kMagic, sizeof kMagic) != 0) {
    error_ = path + ": not a WSNTRC01 trace";
    return;
  }
  header_.seed = read_u64_le(data_.data() + sizeof kMagic);
  header_.config_digest = read_u64_le(data_.data() + sizeof kMagic + 8);
  pos_ = kHeaderBytes;
}

bool TraceReader::read_varint(std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return false;
    const unsigned char byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // over-long varint
}

bool TraceReader::next(Record& out) {
  if (!ok() || pos_ >= data_.size()) return false;
  const std::size_t record_start = pos_;
  std::uint64_t kind = 0;
  std::uint64_t dt = 0;
  std::uint64_t node = 0;
  std::uint64_t peer = 0;
  if (!read_varint(kind) || !read_varint(dt) || !read_varint(node) ||
      !read_varint(peer) || !read_varint(out.a) || !read_varint(out.b)) {
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "truncated record %llu at byte offset %zu",
                  static_cast<unsigned long long>(records_read_), record_start);
    error_ = msg;
    return false;
  }
  if (kind >= kRecordKindCount) {
    char msg[96];
    std::snprintf(msg, sizeof msg, "unknown record kind %llu in record %llu",
                  static_cast<unsigned long long>(kind),
                  static_cast<unsigned long long>(records_read_));
    error_ = msg;
    return false;
  }
  out.kind = static_cast<RecordKind>(kind);
  last_t_ns_ += unzigzag(dt);
  out.t_ns = last_t_ns_;
  out.node = static_cast<std::uint32_t>(node);
  out.peer = static_cast<std::uint32_t>(peer);
  ++records_read_;
  return true;
}

TraceDiff diff_traces(const std::string& path_a, const std::string& path_b) {
  TraceDiff diff;
  TraceReader a{path_a};
  TraceReader b{path_b};
  if (!a.ok() || !b.ok()) {
    diff.error = !a.ok() ? a.error() : b.error();
    return diff;
  }
  diff.comparable = true;
  diff.header_differs = a.header().seed != b.header().seed ||
                        a.header().config_digest != b.header().config_digest;
  std::uint64_t index = 0;
  for (;; ++index) {
    Record ra;
    Record rb;
    const bool got_a = a.next(ra);
    const bool got_b = b.next(rb);
    if (!a.ok() || !b.ok()) {
      diff.comparable = false;
      diff.error = !a.ok() ? a.error() : b.error();
      return diff;
    }
    if (!got_a && !got_b) break;  // both exhausted
    if (!got_a || !got_b || !(ra == rb)) {
      diff.first_diff_index = index;
      diff.has_a = got_a;
      diff.has_b = got_b;
      if (got_a) diff.a = ra;
      if (got_b) diff.b = rb;
      return diff;
    }
  }
  diff.identical = !diff.header_differs;
  if (diff.header_differs) diff.first_diff_index = 0;
  return diff;
}

}  // namespace wsn::trace
