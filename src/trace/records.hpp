// Typed packed trace records: the event vocabulary of the trace subsystem.
#pragma once

#include <array>
#include <cstdint>

namespace wsn::trace {

/// Every traceable event. The numeric values are part of the binary trace
/// format (DESIGN.md §11): append new kinds at the end, never renumber.
enum class RecordKind : std::uint16_t {
  // --- MAC / channel -----------------------------------------------------
  kMacTxStart = 0,   ///< node=src, peer=dst, a=tx id, b=bytes
  kMacTxEnd,         ///< node=src, a=tx id (0 when the frame was an ACK)
  kMacRx,            ///< node=receiver, peer=src, a=tx id, b=bytes
  kMacCollision,     ///< node=receiver, peer=src of the corrupted arrival, a=tx id
  kMacDrop,          ///< node, peer=dst, a=DropReason, b=attempts|queue depth
  kMacBackoff,       ///< node, a=slots drawn, b=contention window
  kChannelSweep,     ///< node=src, a=tx id, b=audible radio count
  // --- Diffusion control/data plane --------------------------------------
  kInterestSend,     ///< node, peer=dst, a=sink id, b=round
  kInterestRecv,     ///< node, peer=from, a=sink id, b=round
  kExploratorySend,  ///< node, peer=dst, a=msg id, b=cost E
  kExploratoryRecv,  ///< node, peer=from, a=msg id, b=cost E
  kDataSend,         ///< node, peer=dst, a=msg id, b=item count
  kDataRecv,         ///< node, peer=from, a=msg id, b=item count
  kIcmSend,          ///< node, a=exploratory msg id, b=cost C
  kIcmRecv,          ///< node, peer=from, a=exploratory msg id, b=cost C
  kReinforceSend,    ///< node, peer=to, a=exploratory msg id, b=force flag
  kReinforceRecv,    ///< node, peer=from, a=exploratory msg id, b=force flag
  kNegativeSend,     ///< node, peer=to, a=NegativeReason
  kNegativeRecv,     ///< node, peer=from
  // --- Caches / gradients / tree -----------------------------------------
  kCacheHit,         ///< node, peer=from, a=duplicate key, b=TraceCache
  kCachePurge,       ///< node, a=TraceCache, b=entries purged
  kGradientNew,      ///< node, peer=neighbour, a=GradientType at creation
  kTreeChange,       ///< node, peer=neighbour, a=1 edge added / 0 removed
  // --- Data-item causality (trace_tool `path`) ----------------------------
  kItemGenerated,    ///< node=source, a=DataItemKey::packed()
  kItemForward,      ///< node, peer=next hop, a=packed key, b=carrying msg id
  kItemDelivered,    ///< node=sink, a=packed key, b=generation-to-sink delay ns
  // --- Energy / failures ---------------------------------------------------
  kEnergySample,     ///< node, a=RadioState, b=bit pattern of joules so far
  kNodeDown,         ///< node powered off by the failure process
  kNodeUp,           ///< node revived by the failure process
  kCount             ///< sentinel, not a record kind
};

inline constexpr std::size_t kRecordKindCount =
    static_cast<std::size_t>(RecordKind::kCount);

/// `a` values of kMacDrop.
enum class DropReason : std::uint64_t { kQueueFull = 0, kRetryExhausted = 1 };

/// `a` values of kNegativeSend.
enum class NegativeReason : std::uint64_t { kCascade = 0, kTruncation = 1 };

/// Cache identities for kCacheHit / kCachePurge.
enum class TraceCache : std::uint64_t {
  kInterestRounds = 0,
  kExploratory = 1,
  kSeenDataMsgs = 2,
  kSeenItems = 3,
  kIcm = 4,
  kGradients = 5,
  kSuspects = 6,
  kSendFailures = 7,
  kNeighborData = 8,
};

/// One trace record. Fixed shape: the kind defines what `peer`, `a` and
/// `b` mean (see the enum comments). `peer` is kNoPeer for events with no
/// counterpart node.
struct Record {
  std::int64_t t_ns = 0;
  RecordKind kind = RecordKind::kCount;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const Record&) const = default;
};

inline constexpr std::uint32_t kNoPeer = 0xffffffffu;

/// Per-kind record tallies; harvested into RunResult and printed by
/// `trace_tool summary`.
struct CounterTable {
  std::array<std::uint64_t, kRecordKindCount> counts{};

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : counts) t += c;
    return t;
  }
  [[nodiscard]] std::uint64_t of(RecordKind k) const {
    return counts[static_cast<std::size_t>(k)];
  }
};

/// Stable dotted name, e.g. "mac.tx_start"; "?" for out-of-range values.
[[nodiscard]] const char* kind_name(RecordKind kind);

/// Component prefix of a kind ("mac", "channel", "diffusion", "cache",
/// "gradient", "item", "energy", "failure").
[[nodiscard]] const char* kind_component(RecordKind kind);

}  // namespace wsn::trace
