// Per-simulator structured event tracer: binary file sink + flight ring.
//
// One `Tracer` serves one `sim::Simulator` (attach with
// `Simulator::set_tracer`). Emission goes through the WSN_TRACE_EMIT macro,
// which compiles to a single pointer load + branch when no tracer is
// attached — the traced-off hot path stays inside the PR 3/4
// zero-allocation envelope. With a tracer attached, records are counted,
// appended to the bounded in-memory ring (the flight recorder, dumped
// automatically when a WSN_AUDIT invariant fires) and varint-encoded into
// the binary file sink (format: DESIGN.md §11).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/records.hpp"

namespace wsn::trace {

/// What to trace. `ExperimentConfig` carries one of these; `spec_from_env`
/// reads the WSN_TRACE / WSN_TRACE_RING environment knobs.
struct TraceSpec {
  /// Binary trace file path; empty disables the file sink. A literal
  /// `{seed}` is replaced with the run's seed; without one, `.s<seed>` is
  /// appended so parallel replicates never write the same file.
  std::string path;
  /// Flight-recorder capacity in records; 0 disables the ring.
  std::size_t ring_capacity = 0;

  [[nodiscard]] bool enabled() const {
    return !path.empty() || ring_capacity > 0;
  }
};

/// WSN_TRACE=<path template>, WSN_TRACE_RING=<records>. Unset → disabled;
/// a malformed ring size warns on stderr and counts as unset.
[[nodiscard]] TraceSpec spec_from_env();

/// Expands a TraceSpec path template for one seed (see TraceSpec::path).
[[nodiscard]] std::string resolve_trace_path(const std::string& path_template,
                                             std::uint64_t seed);

class Tracer {
 public:
  struct Options {
    std::string path;               ///< resolved file path; "" = no file sink
    std::size_t ring_capacity = 0;  ///< 0 = no flight recorder
    std::uint64_t seed = 0;         ///< written into the trace header
    std::uint64_t config_digest = 0;
  };

  explicit Tracer(const Options& options);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Appends one record (hot path when tracing is on). Prefer the
  /// WSN_TRACE_EMIT macro over calling this directly: the macro carries the
  /// traced-off guard, and tools/lint.py R6 flags direct sink calls.
  void emit(RecordKind kind, sim::Time t, std::uint32_t node,
            std::uint32_t peer, std::uint64_t a, std::uint64_t b);

  /// Flushes the encoder buffer to the file sink (no-op without one).
  void flush();

  [[nodiscard]] const CounterTable& counters() const { return counters_; }
  [[nodiscard]] bool file_open() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// The ring's live contents, oldest first.
  [[nodiscard]] std::vector<Record> ring_snapshot() const;

  /// Writes every live tracer's ring to `out` (flight-recorder dump). The
  /// WSN_AUDIT violation hook calls this with the configured dump stream.
  static void dump_all_rings(std::FILE* out);

 private:
  void encode(const Record& r);

  CounterTable counters_;
  // Flight ring: preallocated, overwritten circularly.
  std::vector<Record> ring_;
  std::size_t ring_capacity_ = 0;
  std::size_t ring_next_ = 0;
  std::uint64_t ring_seen_ = 0;
  // File sink: varint encoder buffer + time-delta state.
  std::FILE* file_ = nullptr;
  std::vector<unsigned char> buf_;
  std::int64_t last_t_ns_ = 0;
  std::uint64_t seed_ = 0;
  std::string error_;
};

/// Redirects flight-recorder dumps (default stderr; tests point this at a
/// tmpfile). nullptr restores the default.
void set_ring_dump_stream(std::FILE* out);

}  // namespace wsn::trace

// WSN_TRACE_EMIT(sim, kind, node, peer, a, b): emit one trace record at the
// simulator's current time. `sim` is a `sim::Simulator*`; with no tracer
// attached this is one pointer load + branch and the operand expressions
// are never evaluated.
#define WSN_TRACE_EMIT(sim, kind, node, peer, a, b)                          \
  do {                                                                       \
    ::wsn::trace::Tracer* wsn_trace_t_ = (sim)->tracer();                    \
    if (wsn_trace_t_ != nullptr) {                                           \
      wsn_trace_t_->emit((kind), (sim)->now(), (node), (peer),               \
                         static_cast<std::uint64_t>(a),                      \
                         static_cast<std::uint64_t>(b));                     \
    }                                                                        \
  } while (false)
