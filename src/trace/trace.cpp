#include "trace/trace.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "sim/audit.hpp"

namespace wsn::trace {
namespace {

// 8-byte magic; the trailing two digits are the format version.
constexpr char kMagic[8] = {'W', 'S', 'N', 'T', 'R', 'C', '0', '1'};
constexpr std::size_t kFlushThreshold = 60 * 1024;

// --- flight-recorder registry -------------------------------------------
//
// Tracers with a ring register here so an audit violation anywhere in the
// process can dump every live ring. The registry mutex guards membership
// only; a dump racing a concurrent emit on another worker thread may read
// a half-written record — acceptable for a best-effort crash artefact.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}
std::vector<Tracer*>& registry() {
  static std::vector<Tracer*> tracers;
  return tracers;
}
std::atomic<std::FILE*> g_dump_stream{nullptr};

void ring_dump_hook() {
  std::FILE* out = g_dump_stream.load(std::memory_order_relaxed);
  Tracer::dump_all_rings(out != nullptr ? out : stderr);
}

void append_varint(std::vector<unsigned char>& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  buf.push_back(static_cast<unsigned char>(v));
}

// Time deltas are non-negative on the monotone event clock, but zigzag
// keeps the format robust if an emission site ever runs off-clock.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

void append_u64_le(std::vector<unsigned char>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

}  // namespace

const char* kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kMacTxStart: return "mac.tx_start";
    case RecordKind::kMacTxEnd: return "mac.tx_end";
    case RecordKind::kMacRx: return "mac.rx";
    case RecordKind::kMacCollision: return "mac.collision";
    case RecordKind::kMacDrop: return "mac.drop";
    case RecordKind::kMacBackoff: return "mac.backoff";
    case RecordKind::kChannelSweep: return "channel.sweep";
    case RecordKind::kInterestSend: return "diffusion.interest_send";
    case RecordKind::kInterestRecv: return "diffusion.interest_recv";
    case RecordKind::kExploratorySend: return "diffusion.exploratory_send";
    case RecordKind::kExploratoryRecv: return "diffusion.exploratory_recv";
    case RecordKind::kDataSend: return "diffusion.data_send";
    case RecordKind::kDataRecv: return "diffusion.data_recv";
    case RecordKind::kIcmSend: return "diffusion.icm_send";
    case RecordKind::kIcmRecv: return "diffusion.icm_recv";
    case RecordKind::kReinforceSend: return "diffusion.reinforce_send";
    case RecordKind::kReinforceRecv: return "diffusion.reinforce_recv";
    case RecordKind::kNegativeSend: return "diffusion.negative_send";
    case RecordKind::kNegativeRecv: return "diffusion.negative_recv";
    case RecordKind::kCacheHit: return "cache.hit";
    case RecordKind::kCachePurge: return "cache.purge";
    case RecordKind::kGradientNew: return "gradient.new";
    case RecordKind::kTreeChange: return "gradient.tree_change";
    case RecordKind::kItemGenerated: return "item.generated";
    case RecordKind::kItemForward: return "item.forward";
    case RecordKind::kItemDelivered: return "item.delivered";
    case RecordKind::kEnergySample: return "energy.sample";
    case RecordKind::kNodeDown: return "failure.node_down";
    case RecordKind::kNodeUp: return "failure.node_up";
    case RecordKind::kCount: break;
  }
  return "?";
}

const char* kind_component(RecordKind kind) {
  switch (kind) {
    case RecordKind::kMacTxStart:
    case RecordKind::kMacTxEnd:
    case RecordKind::kMacRx:
    case RecordKind::kMacCollision:
    case RecordKind::kMacDrop:
    case RecordKind::kMacBackoff: return "mac";
    case RecordKind::kChannelSweep: return "channel";
    case RecordKind::kInterestSend:
    case RecordKind::kInterestRecv:
    case RecordKind::kExploratorySend:
    case RecordKind::kExploratoryRecv:
    case RecordKind::kDataSend:
    case RecordKind::kDataRecv:
    case RecordKind::kIcmSend:
    case RecordKind::kIcmRecv:
    case RecordKind::kReinforceSend:
    case RecordKind::kReinforceRecv:
    case RecordKind::kNegativeSend:
    case RecordKind::kNegativeRecv: return "diffusion";
    case RecordKind::kCacheHit:
    case RecordKind::kCachePurge: return "cache";
    case RecordKind::kGradientNew:
    case RecordKind::kTreeChange: return "gradient";
    case RecordKind::kItemGenerated:
    case RecordKind::kItemForward:
    case RecordKind::kItemDelivered: return "item";
    case RecordKind::kEnergySample: return "energy";
    case RecordKind::kNodeDown:
    case RecordKind::kNodeUp: return "failure";
    case RecordKind::kCount: break;
  }
  return "?";
}

TraceSpec spec_from_env() {
  TraceSpec spec;
  if (const char* path = std::getenv("WSN_TRACE"); path != nullptr) {
    spec.path = path;
  }
  if (const char* ring = std::getenv("WSN_TRACE_RING"); ring != nullptr) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(ring, &end, 10);
    if (end == ring || *end != '\0' || v > 100'000'000ULL) {
      std::fprintf(stderr,
                   "[wsn-trace] WSN_TRACE_RING=\"%s\" is not a record count "
                   "in [0, 1e8]; flight recorder disabled\n",
                   ring);
    } else {
      spec.ring_capacity = static_cast<std::size_t>(v);
    }
  }
  return spec;
}

std::string resolve_trace_path(const std::string& path_template,
                               std::uint64_t seed) {
  if (path_template.empty()) return {};
  char seed_str[24];
  std::snprintf(seed_str, sizeof seed_str, "%" PRIu64, seed);
  std::string out = path_template;
  bool substituted = false;
  for (std::size_t pos = out.find("{seed}"); pos != std::string::npos;
       pos = out.find("{seed}", pos)) {
    out.replace(pos, 6, seed_str);
    pos += std::strlen(seed_str);
    substituted = true;
  }
  // Without a placeholder, suffix the seed so parallel replicates of the
  // same template never collide on one file.
  if (!substituted) out += std::string(".s") + seed_str;
  return out;
}

Tracer::Tracer(const Options& options)
    : ring_capacity_{options.ring_capacity}, seed_{options.seed} {
  if (ring_capacity_ > 0) {
    ring_.reserve(ring_capacity_);
    sim::audit::set_violation_hook(&ring_dump_hook);
    std::lock_guard<std::mutex> lock{registry_mutex()};
    registry().push_back(this);
  }
  if (!options.path.empty()) {
    file_ = std::fopen(options.path.c_str(), "wb");
    if (file_ == nullptr) {
      error_ = "cannot open trace file: " + options.path;
      std::fprintf(stderr, "[wsn-trace] %s\n", error_.c_str());
    } else {
      buf_.reserve(kFlushThreshold + 64);
      buf_.insert(buf_.end(), kMagic, kMagic + sizeof kMagic);
      append_u64_le(buf_, options.seed);
      append_u64_le(buf_, options.config_digest);
    }
  }
}

Tracer::~Tracer() {
  flush();
  if (file_ != nullptr) std::fclose(file_);
  if (ring_capacity_ > 0) {
    std::lock_guard<std::mutex> lock{registry_mutex()};
    auto& tracers = registry();
    std::erase(tracers, this);
  }
}

void Tracer::emit(RecordKind kind, sim::Time t, std::uint32_t node,
                  std::uint32_t peer, std::uint64_t a, std::uint64_t b) {
  const Record r{t.as_nanos(), kind, node, peer, a, b};
  ++counters_.counts[static_cast<std::size_t>(kind)];
  if (ring_capacity_ > 0) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(r);
    } else {
      ring_[ring_next_] = r;
    }
    ring_next_ = (ring_next_ + 1) % ring_capacity_;
    ++ring_seen_;
  }
  if (file_ != nullptr) encode(r);
}

void Tracer::encode(const Record& r) {
  append_varint(buf_, static_cast<std::uint64_t>(r.kind));
  append_varint(buf_, zigzag(r.t_ns - last_t_ns_));
  last_t_ns_ = r.t_ns;
  append_varint(buf_, r.node);
  append_varint(buf_, r.peer);
  append_varint(buf_, r.a);
  append_varint(buf_, r.b);
  if (buf_.size() >= kFlushThreshold) flush();
}

void Tracer::flush() {
  if (file_ == nullptr || buf_.empty()) return;
  std::fwrite(buf_.data(), 1, buf_.size(), file_);
  buf_.clear();  // capacity retained
}

std::vector<Record> Tracer::ring_snapshot() const {
  std::vector<Record> out;
  if (ring_.empty()) return out;
  out.reserve(ring_.size());
  // Oldest first: when the ring has wrapped, ring_next_ points at the
  // oldest live record.
  const std::size_t start = ring_.size() < ring_capacity_ ? 0 : ring_next_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::dump_all_rings(std::FILE* out) {
  std::lock_guard<std::mutex> lock{registry_mutex()};
  for (const Tracer* t : registry()) {
    const std::vector<Record> records = t->ring_snapshot();
    std::fprintf(out,
                 "[wsn-trace] flight recorder (seed %" PRIu64 "): last %zu of "
                 "%" PRIu64 " records\n",
                 t->seed_, records.size(), t->ring_seen_);
    for (const Record& r : records) {
      std::fprintf(out,
                   "[wsn-trace]   t=%.9fs %-26s node=%" PRIu32 " peer=%" PRIu32
                   " a=%" PRIu64 " b=%" PRIu64 "\n",
                   static_cast<double>(r.t_ns) * 1e-9, kind_name(r.kind),
                   r.node, r.peer, r.a, r.b);
    }
  }
  std::fflush(out);
}

void set_ring_dump_stream(std::FILE* out) {
  g_dump_stream.store(out, std::memory_order_relaxed);
}

}  // namespace wsn::trace
