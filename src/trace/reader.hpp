// Binary trace reader + same-seed trace comparison (library behind
// tools/trace_tool and the trace tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/records.hpp"

namespace wsn::trace {

/// Decoded trace-file header (written by Tracer's file sink).
struct TraceHeader {
  std::uint64_t seed = 0;
  std::uint64_t config_digest = 0;
};

/// Streams records out of one binary trace file. The file is loaded whole
/// at construction; check `ok()` before iterating.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const TraceHeader& header() const { return header_; }

  /// Decodes the next record into `out`. Returns false at end of trace;
  /// a truncated or corrupt record also returns false and sets `error()`.
  bool next(Record& out);

  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }

 private:
  bool read_varint(std::uint64_t& v);

  std::vector<unsigned char> data_;
  std::size_t pos_ = 0;
  TraceHeader header_;
  std::int64_t last_t_ns_ = 0;
  std::uint64_t records_read_ = 0;
  std::string error_;
};

/// Outcome of comparing two same-seed traces record by record. The record
/// encoding is canonical (same records ⇔ same bytes), so record-wise
/// equality plus equal record counts is byte-exactness.
struct TraceDiff {
  bool comparable = false;  ///< both files opened and parsed
  bool identical = false;
  bool header_differs = false;
  /// Index of the first divergent record (or of the first record present
  /// in only one trace when one is a prefix of the other).
  std::uint64_t first_diff_index = 0;
  bool has_a = false;  ///< trace A still had a record at the divergence
  bool has_b = false;
  Record a;
  Record b;
  std::string error;  ///< set when !comparable
};

/// Compares two binary traces; prints nothing (callers format the result).
[[nodiscard]] TraceDiff diff_traces(const std::string& path_a,
                                    const std::string& path_b);

}  // namespace wsn::trace
