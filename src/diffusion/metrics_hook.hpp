// Observer interface between the protocol layer and metrics collection.
#pragma once

#include "diffusion/types.hpp"
#include "sim/time.hpp"

namespace wsn::diffusion {

/// Implemented by the stats layer; the protocol calls these as events are
/// generated at sources and delivered at sinks.
class MetricsHook {
 public:
  virtual ~MetricsHook() = default;

  virtual void on_event_generated(DataItemKey key, sim::Time gen_time) = 0;

  /// An item arrived at a sink. Called for every arrival; the collector is
  /// responsible for distinct-event filtering per sink.
  virtual void on_event_delivered(net::NodeId sink, DataItemKey key,
                                  sim::Time gen_time,
                                  sim::Time delivery_time) = 0;
};

}  // namespace wsn::diffusion
