// Shared identifiers and parameters for the directed-diffusion layer.
#pragma once

#include <cstdint>
#include <functional>

#include "agg/aggregation_fn.hpp"
#include "net/types.hpp"
#include "net/vec2.hpp"
#include "sim/time.hpp"

namespace wsn::diffusion {

/// Node that generated an event.
using SourceId = net::NodeId;
/// Per-source event counter; (SourceId, EventSeq) names a distinct event.
using EventSeq = std::uint32_t;
/// Globally unique message instance id (the paper's "random message id").
using MsgId = std::uint64_t;

/// Identity of one distinct data item as it moves through the network.
struct DataItemKey {
  SourceId source = net::kNoNode;
  EventSeq seq = 0;

  constexpr bool operator==(const DataItemKey&) const = default;
  [[nodiscard]] constexpr std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(source) << 32) | seq;
  }
};

struct DataItemKeyHash {
  std::size_t operator()(const DataItemKey& k) const {
    return std::hash<std::uint64_t>{}(k.packed());
  }
};

/// Gradient state toward one neighbour (paper §2): exploratory gradients
/// carry low-rate exploratory events; data gradients are reinforced and
/// carry high-rate data.
enum class GradientType : std::uint8_t { kExploratory, kData };

/// Hop-count energy cost attribute (paper §4.1: fixed transmission power,
/// "we measure energy as equivalent to hops").
using EnergyCost = std::uint32_t;
inline constexpr EnergyCost kInfiniteCost = 0xffffffffu;

/// How interests spread (paper §2: "the node floods the interest to all
/// its neighbors, or send only to a subset of neighbors in the direction
/// of the specified region").
enum class InterestPropagation : std::uint8_t {
  kFlood,        ///< network-wide flood (the paper's evaluated default)
  kDirectional,  ///< rebroadcast only when making progress toward the region
};

/// Protocol timing and sizing parameters (paper §5.1 defaults).
struct DiffusionParams {
  sim::Time interest_period = sim::Time::seconds(5.0);
  sim::Time gradient_timeout = sim::Time::seconds(15.0);
  sim::Time exploratory_period = sim::Time::seconds(50.0);
  double data_rate_hz = 2.0;               ///< events per second per source
  sim::Time t_a = sim::Time::seconds(0.5); ///< aggregation delay
  sim::Time t_n = sim::Time::seconds(2.0); ///< negative-reinforcement window
  sim::Time t_p = sim::Time::seconds(1.0); ///< greedy positive-reinforcement wait

  std::uint32_t event_bytes = 64;    ///< exploratory / single-event messages
  std::uint32_t control_bytes = 36;  ///< interests, ICMs, (neg)reinforcements

  /// Random broadcast forwarding delay that de-synchronises floods. Sized
  /// so a whole carrier-sense disc of rebroadcasts (≈150 nodes at the
  /// densest fields) can serialise without a collision storm.
  sim::Time interest_jitter = sim::Time::millis(150);
  sim::Time exploratory_jitter = sim::Time::millis(100);

  /// Local repair: a previously-fed on-tree node that hears no data for
  /// this long re-reinforces an alternative upstream from its caches.
  sim::Time repair_silence = sim::Time::seconds(2.0);
  /// How long a neighbour stays blacklisted after a MAC-level send failure.
  sim::Time suspect_hold = sim::Time::seconds(5.0);
  /// Seen-item / seen-message cache retention.
  sim::Time cache_ttl = sim::Time::seconds(10.0);

  /// Disables §4.3 path truncation (negative reinforcement sweeps); used
  /// by the ablation benchmarks to quantify what truncation contributes.
  bool enable_truncation = true;

  /// Interest dissemination strategy.
  InterestPropagation interest_propagation = InterestPropagation::kFlood;
  /// Directional mode: half-width of the forwarding corridor around the
  /// sink→region-centre line. Must exceed the radio range for the corridor
  /// to stay connected; wider tolerates voids and failures better.
  double directional_corridor_m = 60.0;

  /// Aggregate size model; defaults to the paper's perfect aggregation.
  agg::AggregationFnPtr aggregation =
      std::make_shared<agg::PerfectAggregation>(64);
};

}  // namespace wsn::diffusion
