// Directed-diffusion protocol node (paper §2) with aggregation (§3).
//
// `DiffusionNode` implements everything both instantiations share:
// interest flooding, gradient maintenance, exploratory-event flooding with
// the energy-cost attribute, the data cache, T_a-delayed aggregation,
// reinforcement propagation, negative reinforcement, and reinforcement-based
// local repair. The policy points where the two instantiations differ are
// virtual:
//   * what a sink does with a previously-unseen exploratory event,
//   * which upstream neighbour a reinforcement is propagated to,
//   * how an outgoing aggregate is priced and which incoming aggregates
//     count as "useful" for truncation,
//   * what happens with incremental-cost messages.
// `OpportunisticNode` (this module) reinforces the empirically-lowest-delay
// path immediately; `GreedyNode` (src/core) builds the greedy incremental
// tree of §4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/messages.hpp"
#include "diffusion/metrics_hook.hpp"
#include "diffusion/types.hpp"
#include "mac/mac_base.hpp"
#include "net/types.hpp"
#include "net/vec2.hpp"
#include "sim/audit.hpp"
#include "sim/flat_map.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace wsn::diffusion {

/// Per-node protocol counters.
struct ProtocolStats {
  std::uint64_t interests_sent = 0;
  std::uint64_t exploratory_sent = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t icm_sent = 0;
  std::uint64_t reinforcements_sent = 0;
  std::uint64_t negatives_sent = 0;
  std::uint64_t repairs_attempted = 0;
  std::uint64_t items_dropped_no_gradient = 0;
  std::uint64_t aggregates_received = 0;
};

class DiffusionNode : public mac::MacUser {
 public:
  DiffusionNode(sim::Simulator& sim, mac::MacBase& mac, net::Vec2 position,
                const DiffusionParams& params, sim::Rng rng,
                MetricsHook* hook);
  ~DiffusionNode() override = default;

  DiffusionNode(const DiffusionNode&) = delete;
  DiffusionNode& operator=(const DiffusionNode&) = delete;

  /// Makes this node a sink for the task covering `region` and starts its
  /// periodic interest flood.
  void make_sink(net::Rect region);

  /// Marks the node's sensor as detecting a phenomenon. It becomes an
  /// active source when a matching interest arrives (paper §2: sensing
  /// circuitry wakes up on task receipt).
  void set_detecting(bool detecting);

  /// Starts periodic maintenance (truncation / repair / cache pruning).
  /// Call once after construction, before Simulator::run.
  void start();

  /// Application-specific in-network processing hook (paper §2: nodes
  /// "trigger application-specific filters"). Every data item entering this
  /// node's forwarding pipeline — received or self-generated — is offered
  /// to each filter; returning false drops it (suppression). Filters do
  /// not affect what a sink *records*, only what it forwards.
  using ItemFilter = std::function<bool(const DataItem&)>;
  void add_item_filter(ItemFilter filter) {
    filters_.push_back(std::move(filter));
  }

  // --- inspection (tests, tree extraction, examples) ---
  [[nodiscard]] net::NodeId id() const { return mac_->id(); }
  [[nodiscard]] bool is_sink() const { return is_sink_; }
  [[nodiscard]] bool is_active_source() const { return source_active_; }
  [[nodiscard]] const ProtocolStats& stats() const { return stats_; }
  /// Neighbours we currently hold a *data* gradient toward (our downstream
  /// next hops on the aggregation tree).
  [[nodiscard]] std::vector<net::NodeId> data_gradient_neighbors() const;
  /// All gradients (neighbour, type) for debugging/visualisation.
  [[nodiscard]] std::vector<std::pair<net::NodeId, GradientType>> gradient_view()
      const;

  // --- MacUser ---
  void mac_receive(const net::Frame& frame) final;
  void mac_send_failed(const net::Frame& frame) final;
  void mac_send_succeeded(const net::Frame& frame) final;

 protected:
  struct Gradient {
    GradientType type = GradientType::kExploratory;
    sim::Time expires;
  };

  /// Cap on tracked senders per exploratory event — enough for repair
  /// fallbacks, small enough to live inline in the record.
  static constexpr std::size_t kMaxSendersTracked = 4;

  /// What we remember about one exploratory event.
  struct ExplRecord {
    SourceId source = net::kNoNode;
    EventSeq seq = 0;
    std::int64_t gen_time_ns = 0;
    sim::Time first_seen;
    /// Senders that delivered this event, in arrival order, with the cost
    /// attribute each copy carried (capped; enough for repair fallbacks).
    sim::InlineVec<std::pair<net::NodeId, EnergyCost>, kMaxSendersTracked>
        senders;
    net::NodeId last_upstream = net::kNoNode;  ///< whom we last reinforced
    bool forward_scheduled = false;

    [[nodiscard]] EnergyCost best_received_cost() const {
      EnergyCost best = kInfiniteCost;
      for (const auto& [nb, c] : senders) best = std::min(best, c);
      return best;
    }
    /// Energy cost of delivering this event to *this* node.
    [[nodiscard]] EnergyCost my_cost() const {
      const EnergyCost b = best_received_cost();
      return b == kInfiniteCost ? kInfiniteCost : b + 1;
    }
  };

  /// Incremental-cost state per exploratory msg id (greedy only, but kept
  /// here so the local reinforcement rule can see it uniformly).
  struct IcmRecord {
    EnergyCost best_c = kInfiniteCost;     ///< lowest received C
    net::NodeId best_sender = net::kNoNode;
    EnergyCost forwarded_c = kInfiniteCost;
    bool generated = false;  ///< we generated an ICM for this event
  };

  /// One aggregate received (or self-generated) since the last flush.
  struct IncomingAgg {
    net::NodeId from = net::kNoNode;  ///< == id() for self-generated items
    std::vector<DataItem> items;
    EnergyCost cost = 0;
    bool had_new_items = false;
  };

  /// How a flush prices the outgoing aggregate and which neighbours were
  /// useful this round (for §4.3 truncation).
  struct FlushDecision {
    EnergyCost outgoing_cost = 0;
    std::vector<net::NodeId> useful_neighbors;
  };

  // --- policy points ---
  virtual void sink_on_new_exploratory(MsgId id) = 0;
  /// Local reinforcement rule: pick the upstream neighbour for `id`,
  /// skipping `suspect` neighbours; kNoNode if no viable option.
  [[nodiscard]] virtual net::NodeId choose_upstream(MsgId id) const = 0;
  /// Prices the outgoing aggregate and marks the useful neighbours into
  /// `decision` (cleared by the caller). `window` spans the live prefix of
  /// a reused slot buffer, valid only for the duration of the call.
  virtual void flush_policy(const std::vector<DataItem>& outgoing,
                            std::span<const IncomingAgg> window,
                            FlushDecision& decision) = 0;
  virtual void on_new_exploratory(const ExplRecord& rec, MsgId id) {
    (void)rec;
    (void)id;
  }
  virtual void handle_icm(const IncrementalCostMsg& msg, net::NodeId from) {
    (void)msg;
    (void)from;
  }

  // --- shared machinery available to subclasses ---
  void send_control(net::NodeId dst, net::MessagePtr payload);
  void send_reinforcement(net::NodeId to, MsgId id, bool force = false);
  /// Applies the local reinforcement rule for exploratory event `id_of_expl`
  /// and forwards the reinforcement upstream if the choice changed (or
  /// unconditionally when `force` — used by sink-driven path repair).
  void propagate_reinforcement(MsgId id_of_expl, bool force = false);
  /// True when `nb` must not be chosen as an upstream (currently:
  /// blacklisted after a MAC-level send failure). Combined with the strict
  /// cost-descent rule in choose_upstream, reinforcement chains cannot
  /// loop: each hop's delivery cost strictly decreases toward the source.
  [[nodiscard]] bool unusable_upstream(net::NodeId nb) const;
  /// Floods one exploratory event now (also used by orphaned sources to
  /// trigger path re-establishment without waiting a full period).
  void send_exploratory_now();
  void send_to_data_gradients(net::MessagePtr payload, std::uint32_t bytes);
  [[nodiscard]] bool has_data_gradient_out() const;
  [[nodiscard]] bool is_suspect(net::NodeId nb) const;
  [[nodiscard]] MsgId fresh_msg_id();
  using ExplCache = sim::FlatMap<MsgId, ExplRecord>;
  using IcmCache = sim::FlatMap<MsgId, IcmRecord>;
  [[nodiscard]] const ExplCache& expl_cache() const { return expl_cache_; }
  [[nodiscard]] const IcmCache& icm_cache() const { return icm_cache_; }
  IcmRecord& icm_record(MsgId id) { return icm_cache_[id]; }

  /// Builds a protocol message in the simulator's recycling pool — the one
  /// blessed allocation path for per-send messages (tools/lint.py flags
  /// bare make_shared of message types in src/).
  template <typename M, typename... Args>
  [[nodiscard]] std::shared_ptr<M> make_msg(Args&&... args) {
    return sim_->arena().make<M>(std::forward<Args>(args)...);
  }

  sim::Simulator* sim_;
  mac::MacBase* mac_;
  net::Vec2 position_;
  DiffusionParams params_;
  sim::Rng rng_;
  MetricsHook* hook_;
  ProtocolStats stats_;

 private:
  // message handlers
  void handle_interest(const InterestMsg& msg, net::NodeId from);
  void handle_exploratory(const ExploratoryMsg& msg, net::NodeId from);
  void handle_data(const DataMsg& msg, net::NodeId from);
  void handle_reinforcement(const ReinforcementMsg& msg, net::NodeId from);
  void handle_negative(net::NodeId from);

  // periodic actions
  void send_interest();
  void generate_data_event();
  void generate_exploratory_event();
  void flush();
  void run_truncation();
  void run_repair();
  void housekeeping();

  void activate_source();
  [[nodiscard]] bool passes_filters(const DataItem& item) const;
  void refresh_gradient(net::NodeId nb);
  void degrade_gradient(net::NodeId nb);
  void maybe_early_flush();
  [[nodiscard]] bool is_aggregation_point() const;
  /// Fills and returns `gradient_scratch_` with the live data-gradient
  /// neighbours (ascending id); valid until the next call.
  [[nodiscard]] const std::vector<net::NodeId>& live_data_gradients();
  /// Claims the next reusable aggregation-window slot (fields reset, item
  /// capacity retained) and extends the live prefix.
  [[nodiscard]] IncomingAgg& next_window_slot();

  // roles
  bool is_sink_ = false;
  net::Rect region_;
  std::uint32_t interest_round_ = 0;
  bool detecting_ = false;
  bool source_active_ = false;
  EventSeq next_seq_ = 0;

  // Per-node state lives in sorted flat maps (sim/flat_map.hpp): fan-out
  // is bounded by radio degree, iteration is deterministic by key, and
  // erase/clear keep capacity so steady-state maintenance never allocates.

  // gradient state: neighbour -> gradient toward the sink side
  sim::FlatMap<net::NodeId, Gradient> gradients_;
  // interest duplicate suppression: sink -> highest round rebroadcast
  sim::FlatMap<net::NodeId, std::uint32_t> interest_rounds_;

  // caches
  ExplCache expl_cache_;
  IcmCache icm_cache_;
  sim::FlatMap<std::uint64_t, sim::Time> seen_items_;  // packed key
  sim::FlatMap<MsgId, sim::Time> seen_data_msgs_;

  // aggregation buffer; `from` tracks which neighbour delivered the item
  // (== id() for self-generated) so flushes are split-horizon: an item is
  // never sent back to the neighbour it came from.
  struct PendingItem {
    DataItem item;
    net::NodeId from;
  };
  std::vector<PendingItem> pending_;
  sim::FlatSet<std::uint64_t> pending_keys_;
  // Window slots are recycled: the live prefix [0, window_live_) is this
  // round's aggregates; flush resets the count but keeps each slot's item
  // capacity, so the receive path stops allocating once warm.
  std::vector<IncomingAgg> window_aggs_;
  std::size_t window_live_ = 0;
  sim::FlatSet<SourceId> expected_sources_;  ///< sources in last outgoing aggregate

  // truncation / repair bookkeeping
  struct NeighborDataState {
    sim::Time last_data;
    sim::Time last_useful;
  };
  sim::FlatMap<net::NodeId, NeighborDataState> neighbor_data_;
  sim::FlatMap<net::NodeId, sim::Time> suspects_;
  // Consecutive MAC retry-exhaustions per next hop; one transient failure
  // under contention must not tear a working path down.
  sim::FlatMap<net::NodeId, int> send_failures_;
  // Sink only: when each source last delivered a data item here; drives
  // per-source path repair.
  sim::FlatMap<SourceId, sim::Time> last_source_item_;

  // flush-path scratch, reused across rounds (capacity-retaining) so a
  // steady-state flush is allocation-free once warm
  std::vector<DataItem> union_scratch_;
  std::vector<net::NodeId> gradient_scratch_;
  sim::FlatSet<SourceId> have_scratch_;
  FlushDecision decision_scratch_;

  // Audit-mode watermark backing the TTL cache-bound invariant: cache
  // inserts assert the purge cadence is alive, and housekeeping asserts no
  // entry outlived its TTL plus one purge period.
  WSN_AUDIT_ONLY(sim::Time last_housekeeping_;)
  WSN_AUDIT_ONLY(void audit_cache_bounds(sim::Time now) const;)
  WSN_AUDIT_ONLY(void audit_purge_cadence() const;)
  sim::Time last_data_in_ = sim::Time::zero();
  sim::Time last_repair_ = sim::Time::zero();
  sim::Time last_cascade_ = sim::Time::zero();
  sim::Time last_orphan_exploratory_ = sim::Time::zero();

  /// Tears down demand toward upstreams after we lost all downstream data
  /// gradients; rate-limited to once per T_n to damp cascade storms.
  void cascade_negative_upstream();

  // application-level forwarding filters
  std::vector<ItemFilter> filters_;

  // timers
  sim::Timer interest_timer_;
  sim::Timer exploratory_timer_;
  sim::Timer datagen_timer_;
  sim::Timer flush_timer_;
  sim::Timer trunc_timer_;
  sim::Timer repair_timer_;
  sim::Timer housekeeping_timer_;

  std::uint64_t msg_counter_ = 0;
};

/// The baseline instantiation (paper §2/§5 "opportunistic aggregation"):
/// reinforce the neighbour that delivered a previously-unseen exploratory
/// event first — an empirically low-delay tree — and aggregate only where
/// paths happen to overlap.
class OpportunisticNode final : public DiffusionNode {
 public:
  using DiffusionNode::DiffusionNode;

 protected:
  void sink_on_new_exploratory(MsgId id) override;
  [[nodiscard]] net::NodeId choose_upstream(MsgId id) const override;
  void flush_policy(const std::vector<DataItem>& outgoing,
                    std::span<const IncomingAgg> window,
                    FlushDecision& decision) override;
};

}  // namespace wsn::diffusion
