// Wire messages of the diffusion protocol family.
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/types.hpp"
#include "net/types.hpp"
#include "net/vec2.hpp"
#include "sim/arena.hpp"

namespace wsn::diffusion {

enum class MsgType : std::uint8_t {
  kInterest,
  kExploratory,
  kData,
  kIncrementalCost,
  kReinforcement,
  kNegativeReinforcement,
};

/// Common header for all diffusion messages.
struct DiffusionMsg : net::Message {
  MsgType type;
  explicit DiffusionMsg(MsgType t) : type{t} {}
};

/// Task description flooded by a sink (paper §2). One task per experiment;
/// attribute matching reduces to "is this node detecting inside `region`".
struct InterestMsg final : DiffusionMsg {
  InterestMsg() : DiffusionMsg(MsgType::kInterest) {}
  net::NodeId sink = net::kNoNode;
  std::uint32_t round = 0;      ///< refresh counter, for duplicate suppression
  net::Rect region;             ///< geographic scope of the sensing task
  net::Vec2 sender_pos;         ///< rebroadcaster position (directional mode)
  net::Vec2 sink_pos;           ///< originating sink position (directional)
};

/// Low-rate event flooded for path establishment (paper §4.1). `cost_e` is
/// the energy (hop) cost from the source to the **sender** of this copy;
/// a receiver's own cost is cost_e + 1.
struct ExploratoryMsg final : DiffusionMsg {
  ExploratoryMsg() : DiffusionMsg(MsgType::kExploratory) {}
  MsgId msg_id = 0;
  SourceId source = net::kNoNode;
  EventSeq seq = 0;
  std::int64_t gen_time_ns = 0;
  EnergyCost cost_e = 0;
};

/// One distinct event inside an aggregate.
struct DataItem {
  DataItemKey key;
  std::int64_t gen_time_ns = 0;
};

/// An aggregate of one or more data items (paper §4.2). `cost_e` is the
/// cumulative energy cost attribute computed via set cover at each hop.
///
/// The item buffer is arena-backed: protocol code constructs DataMsg with
/// the simulator's arena so both the message slot (via allocate_shared)
/// and the items vector recycle — a data send at steady state performs
/// zero global-heap allocations. The default constructor falls back to
/// the global heap for tests and tools that craft messages by hand.
struct DataMsg final : DiffusionMsg {
  using ItemVec = std::vector<DataItem, sim::ArenaAllocator<DataItem>>;
  DataMsg() : DiffusionMsg(MsgType::kData) {}
  explicit DataMsg(sim::RecyclingArena& arena)
      : DiffusionMsg(MsgType::kData),
        items(sim::ArenaAllocator<DataItem>{&arena}) {}
  MsgId msg_id = 0;
  ItemVec items;
  EnergyCost cost_e = 0;
};

/// Incremental cost message (paper §4.1): announces, down the existing
/// tree, the extra cost `cost_c` of grafting `new_source`'s exploratory
/// event `exploratory_id` onto the tree. C only ever decreases en route.
struct IncrementalCostMsg final : DiffusionMsg {
  IncrementalCostMsg() : DiffusionMsg(MsgType::kIncrementalCost) {}
  MsgId exploratory_id = 0;
  SourceId new_source = net::kNoNode;
  EnergyCost cost_c = kInfiniteCost;
};

/// Positive reinforcement: "set a data gradient toward me and pull this
/// exploratory event's path up" (paper §2, §4.1).
struct ReinforcementMsg final : DiffusionMsg {
  ReinforcementMsg() : DiffusionMsg(MsgType::kReinforcement) {}
  MsgId exploratory_id = 0;
  /// Repair reinforcements re-propagate even where the local upstream
  /// choice is unchanged, so a sink can re-pull a whole path after silence.
  bool force = false;
};

/// Negative reinforcement: "stop sending me data" (paper §4.3).
struct NegativeReinforcementMsg final : DiffusionMsg {
  NegativeReinforcementMsg()
      : DiffusionMsg(MsgType::kNegativeReinforcement) {}
};

}  // namespace wsn::diffusion
