#include "diffusion/node.hpp"

#include <algorithm>
#include <cassert>

#include "agg/set_cover.hpp"
#include "sim/logger.hpp"
#include "trace/trace.hpp"

namespace wsn::diffusion {
namespace {
constexpr std::string_view kTag = "diffusion";
/// Cache-purge cadence. The TTL caches are swept this often, so an entry
/// lives at most its TTL plus one period (plus the one-second arming
/// jitter) — the bound the WSN_AUDIT invariant enforces.
const sim::Time kHousekeepingPeriod = sim::Time::seconds(10.0);
const sim::Time kHousekeepingJitter = sim::Time::seconds(1.0);
}  // namespace

DiffusionNode::DiffusionNode(sim::Simulator& sim, mac::MacBase& mac,
                             net::Vec2 position,
                             const DiffusionParams& params, sim::Rng rng,
                             MetricsHook* hook)
    : sim_{&sim},
      mac_{&mac},
      position_{position},
      params_{params},
      rng_{rng},
      hook_{hook},
      interest_timer_{sim, [this] { send_interest(); }},
      exploratory_timer_{sim, [this] { generate_exploratory_event(); }},
      datagen_timer_{sim, [this] { generate_data_event(); }},
      flush_timer_{sim, [this] { flush(); }},
      trunc_timer_{sim, [this] { run_truncation(); }},
      repair_timer_{sim, [this] { run_repair(); }},
      housekeeping_timer_{sim, [this] { housekeeping(); }} {
  mac.set_user(this);
}

void DiffusionNode::start() {
  trunc_timer_.arm(params_.t_n + rng_.jitter(params_.t_n));
  repair_timer_.arm(params_.repair_silence.scaled(0.5) +
                    rng_.jitter(params_.repair_silence));
  housekeeping_timer_.arm(kHousekeepingPeriod +
                          rng_.jitter(kHousekeepingJitter));
  WSN_AUDIT_ONLY(last_housekeeping_ = sim_->now();)
}

void DiffusionNode::make_sink(net::Rect region) {
  is_sink_ = true;
  region_ = region;
  interest_timer_.arm(rng_.jitter(sim::Time::millis(100)));
}

void DiffusionNode::set_detecting(bool detecting) { detecting_ = detecting; }

MsgId DiffusionNode::fresh_msg_id() {
  // Unique across nodes: high bits are the node id, low bits a counter.
  return (static_cast<MsgId>(id()) << 40) | ++msg_counter_;
}

// ---------------------------------------------------------------- sending

void DiffusionNode::send_control(net::NodeId dst, net::MessagePtr payload) {
  net::Frame f;
  f.dst = dst;
  f.bytes = params_.control_bytes;
  f.payload = std::move(payload);
  mac_->send(std::move(f));
}

void DiffusionNode::send_reinforcement(net::NodeId to, MsgId id, bool force) {
  auto msg = make_msg<ReinforcementMsg>();
  msg->exploratory_id = id;
  msg->force = force;
  ++stats_.reinforcements_sent;
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kReinforceSend, this->id(), to, id,
                 force ? 1 : 0);
  send_control(to, std::move(msg));
}

void DiffusionNode::send_to_data_gradients(net::MessagePtr payload,
                                           std::uint32_t bytes) {
  for (net::NodeId nb : live_data_gradients()) {
    net::Frame f;
    f.dst = nb;
    f.bytes = bytes;
    f.payload = payload;
    mac_->send(std::move(f));
  }
}

const std::vector<net::NodeId>& DiffusionNode::live_data_gradients() {
  gradient_scratch_.clear();
  const sim::Time now = sim_->now();
  for (const auto& [nb, g] : gradients_) {
    if (g.type == GradientType::kData && g.expires > now) {
      gradient_scratch_.push_back(nb);
    }
  }
  return gradient_scratch_;
}

bool DiffusionNode::has_data_gradient_out() const {
  const sim::Time now = sim_->now();
  for (const auto& [nb, g] : gradients_) {
    if (g.type == GradientType::kData && g.expires > now) return true;
  }
  return false;
}

bool DiffusionNode::is_suspect(net::NodeId nb) const {
  auto it = suspects_.find(nb);
  return it != suspects_.end() && it->second > sim_->now();
}

bool DiffusionNode::unusable_upstream(net::NodeId nb) const {
  return is_suspect(nb);
}

void DiffusionNode::cascade_negative_upstream() {
  const sim::Time now = sim_->now();
  last_data_in_ = sim::Time::zero();
  expected_sources_.clear();
  if (now - last_cascade_ <= params_.t_n && last_cascade_ != sim::Time::zero()) {
    return;  // damped: at most one upstream teardown per window
  }
  last_cascade_ = now;
  for (auto& [nb, st] : neighbor_data_) {
    if (st.last_data + params_.t_n > now) {
      ++stats_.negatives_sent;
      WSN_LOG_AT(sim::LogLevel::kDebug, now, kTag, "node %u NR(cascade) -> %u",
                 id(), nb);
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kNegativeSend, id(), nb,
                     trace::NegativeReason::kCascade, 0);
      send_control(nb, make_msg<NegativeReinforcementMsg>());
    }
  }
}

std::vector<net::NodeId> DiffusionNode::data_gradient_neighbors() const {
  // Inspection-only (tests, tree extraction): builds a fresh vector so it
  // stays const and does not disturb the flush path's scratch buffer.
  std::vector<net::NodeId> out;
  const sim::Time now = sim_->now();
  for (const auto& [nb, g] : gradients_) {
    if (g.type == GradientType::kData && g.expires > now) out.push_back(nb);
  }
  return out;
}

std::vector<std::pair<net::NodeId, GradientType>> DiffusionNode::gradient_view()
    const {
  std::vector<std::pair<net::NodeId, GradientType>> v;
  const sim::Time now = sim_->now();
  for (const auto& [nb, g] : gradients_) {
    if (g.expires > now) v.emplace_back(nb, g.type);
  }
  return v;
}

// --------------------------------------------------------------- gradients

void DiffusionNode::refresh_gradient(net::NodeId nb) {
  auto [it, inserted] = gradients_.try_emplace(nb);
  if (inserted) {
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kGradientNew, id(), nb,
                   it->second.type, 0);
  }
  it->second.expires = sim_->now() + params_.gradient_timeout;
}

void DiffusionNode::degrade_gradient(net::NodeId nb) {
  auto it = gradients_.find(nb);
  if (it == gradients_.end()) return;
  if (it->second.type == GradientType::kData) {
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kTreeChange, id(), nb, 0, 0);
  }
  it->second.type = GradientType::kExploratory;
}

// ---------------------------------------------------------------- receive

void DiffusionNode::mac_receive(const net::Frame& frame) {
  const auto* msg = dynamic_cast<const DiffusionMsg*>(frame.payload.get());
  if (msg == nullptr) return;
  switch (msg->type) {
    case MsgType::kInterest:
      handle_interest(static_cast<const InterestMsg&>(*msg), frame.src);
      break;
    case MsgType::kExploratory:
      handle_exploratory(static_cast<const ExploratoryMsg&>(*msg), frame.src);
      break;
    case MsgType::kData:
      handle_data(static_cast<const DataMsg&>(*msg), frame.src);
      break;
    case MsgType::kIncrementalCost:
      handle_icm(static_cast<const IncrementalCostMsg&>(*msg), frame.src);
      break;
    case MsgType::kReinforcement:
      handle_reinforcement(static_cast<const ReinforcementMsg&>(*msg),
                           frame.src);
      break;
    case MsgType::kNegativeReinforcement:
      handle_negative(frame.src);
      break;
  }
}

void DiffusionNode::mac_send_failed(const net::Frame& frame) {
  // One exhausted unicast can be plain contention; two in a row without a
  // success in between means the next hop is dead or unreachable.
  if (++send_failures_[frame.dst] < 2) return;
  suspects_[frame.dst] = sim_->now() + params_.suspect_hold;
  auto it = gradients_.find(frame.dst);
  const bool had_data =
      it != gradients_.end() && it->second.type == GradientType::kData;
  if (had_data) {
    degrade_gradient(frame.dst);
    if (!has_data_gradient_out() && !is_sink_) {
      // Orphaned: stop pulling data and tell upstreams to stop sending.
      cascade_negative_upstream();
    }
  }
}

void DiffusionNode::mac_send_succeeded(const net::Frame& frame) {
  send_failures_.erase(frame.dst);
}

// ---------------------------------------------------------------- interest

void DiffusionNode::send_interest() {
  ++interest_round_;
  auto msg = make_msg<InterestMsg>();
  msg->sink = id();
  msg->round = interest_round_;
  msg->region = region_;
  msg->sender_pos = position_;
  msg->sink_pos = position_;
  ++stats_.interests_sent;
  interest_rounds_[id()] = interest_round_;
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kInterestSend, id(), net::kBroadcast,
                 id(), interest_round_);
  net::Frame f;
  f.dst = net::kBroadcast;
  f.bytes = params_.control_bytes;
  f.payload = std::move(msg);
  mac_->send(std::move(f));
  interest_timer_.arm(params_.interest_period);
}

void DiffusionNode::handle_interest(const InterestMsg& msg, net::NodeId from) {
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kInterestRecv, id(), from, msg.sink,
                 msg.round);
  refresh_gradient(from);
  auto [it, inserted] = interest_rounds_.try_emplace(msg.sink, 0);
  if (!inserted && it->second >= msg.round) {
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kCacheHit, id(), from,
                   (static_cast<std::uint64_t>(msg.sink) << 32) | msg.round,
                   trace::TraceCache::kInterestRounds);
    return;  // already rebroadcast
  }
  it->second = msg.round;

  if (detecting_ && !source_active_ && msg.region.contains(position_)) {
    activate_source();
  }

  // Directional mode (paper §2): rebroadcast only inside the task region
  // or within a corridor around the sink→region line, so the interest
  // travels toward the region instead of flooding the whole field.
  if (params_.interest_propagation == InterestPropagation::kDirectional &&
      !msg.region.contains(position_)) {
    const net::Vec2 region_center{(msg.region.x0 + msg.region.x1) * 0.5,
                                  (msg.region.y0 + msg.region.y1) * 0.5};
    if (net::distance_to_segment(position_, msg.sink_pos, region_center) >
        params_.directional_corridor_m) {
      return;
    }
  }

  // Re-flood after a small random delay, stamping our own position.
  auto fwd = make_msg<InterestMsg>(msg);
  fwd->sender_pos = position_;
  auto payload = std::static_pointer_cast<const net::Message>(std::move(fwd));
  ++stats_.interests_sent;
  sim_->schedule_in(rng_.jitter(params_.interest_jitter), [this, payload] {
    if (!mac_->alive()) return;
    const auto& im = static_cast<const InterestMsg&>(*payload);
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kInterestSend, id(),
                   net::kBroadcast, im.sink, im.round);
    net::Frame f;
    f.dst = net::kBroadcast;
    f.bytes = params_.control_bytes;
    f.payload = payload;
    mac_->send(std::move(f));
  });
}

// ------------------------------------------------------------------ source

bool DiffusionNode::passes_filters(const DataItem& item) const {
  for (const auto& f : filters_) {
    if (!f(item)) return false;
  }
  return true;
}

void DiffusionNode::activate_source() {
  source_active_ = true;
  // Sources triggered by the same phenomenon sample in near-lockstep
  // (paper §4.1); align generation to multiples of the event period so
  // rounds meet at aggregation points instead of straggling by up to a
  // period. A small jitter keeps their transmissions from colliding.
  const auto period =
      sim::Time::seconds(1.0 / params_.data_rate_hz).as_nanos();
  const std::int64_t to_next_tick = period - sim_->now().as_nanos() % period;
  datagen_timer_.arm(sim::Time::nanos(to_next_tick) +
                     rng_.jitter(sim::Time::millis(20)));
  // Stagger first advertisements so co-triggered sources do not collide.
  exploratory_timer_.arm(rng_.jitter(sim::Time::seconds(1.0)));
  WSN_LOG_AT(sim::LogLevel::kInfo, sim_->now(), kTag, "node %u became source",
             id());
}

void DiffusionNode::generate_data_event() {
  datagen_timer_.arm(sim::Time::seconds(1.0 / params_.data_rate_hz));
  if (!mac_->alive() || !source_active_) return;

  DataItem item;
  item.key = DataItemKey{id(), next_seq_++};
  item.gen_time_ns = sim_->now().as_nanos();
  if (hook_ != nullptr) hook_->on_event_generated(item.key, sim_->now());
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kItemGenerated, id(), trace::kNoPeer,
                 item.key.packed(), 0);

  seen_items_[item.key.packed()] = sim_->now();
  if (passes_filters(item) && pending_keys_.insert(item.key.packed()).second) {
    pending_.push_back(PendingItem{item, id()});
  }
  IncomingAgg& self = next_window_slot();
  self.from = id();
  self.items.push_back(item);
  self.cost = 0;
  self.had_new_items = true;

  flush_timer_.arm_if_idle(params_.t_a);
  maybe_early_flush();
}

void DiffusionNode::generate_exploratory_event() {
  exploratory_timer_.arm(params_.exploratory_period);
  if (!mac_->alive() || !source_active_) return;
  send_exploratory_now();
}

void DiffusionNode::send_exploratory_now() {
  auto msg = make_msg<ExploratoryMsg>();
  msg->msg_id = fresh_msg_id();
  msg->source = id();
  msg->seq = next_seq_++;
  msg->gen_time_ns = sim_->now().as_nanos();
  msg->cost_e = 0;
  if (hook_ != nullptr) {
    hook_->on_event_generated(DataItemKey{id(), msg->seq}, sim_->now());
  }
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kItemGenerated, id(), trace::kNoPeer,
                 (DataItemKey{id(), msg->seq}.packed()), 0);
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kExploratorySend, id(),
                 net::kBroadcast, msg->msg_id, msg->cost_e);

  // Cache our own event so reinforcement chains terminate here.
  ExplRecord rec;
  rec.source = id();
  rec.seq = msg->seq;
  rec.gen_time_ns = msg->gen_time_ns;
  rec.first_seen = sim_->now();
  rec.forward_scheduled = true;
  expl_cache_.emplace(msg->msg_id, std::move(rec));

  ++stats_.exploratory_sent;
  net::Frame f;
  f.dst = net::kBroadcast;
  f.bytes = params_.event_bytes;
  f.payload = std::move(msg);
  mac_->send(std::move(f));
}

// ------------------------------------------------------------- exploratory

void DiffusionNode::handle_exploratory(const ExploratoryMsg& msg,
                                       net::NodeId from) {
  WSN_AUDIT_ONLY(audit_purge_cadence();)
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kExploratoryRecv, id(), from,
                 msg.msg_id, msg.cost_e);
  auto [it, first] = expl_cache_.try_emplace(msg.msg_id);
  ExplRecord& rec = it->second;
  if (first) {
    rec.source = msg.source;
    rec.seq = msg.seq;
    rec.gen_time_ns = msg.gen_time_ns;
    rec.first_seen = sim_->now();
  }
  if (rec.source == id()) return;  // echo of our own event

  // Track the sender and the cost its copy carried.
  bool known_sender = false;
  for (auto& [nb, c] : rec.senders) {
    if (nb == from) {
      c = std::min(c, msg.cost_e);
      known_sender = true;
      break;
    }
  }
  if (!known_sender && rec.senders.size() < kMaxSendersTracked) {
    rec.senders.emplace_back(from, msg.cost_e);
  }

  if (!first) {
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kCacheHit, id(), from, msg.msg_id,
                   trace::TraceCache::kExploratory);
    return;
  }

  // Sinks consume the event (it is a real, low-rate event).
  if (is_sink_ && hook_ != nullptr) {
    seen_items_[DataItemKey{rec.source, rec.seq}.packed()] = sim_->now();
    hook_->on_event_delivered(id(), DataItemKey{rec.source, rec.seq},
                              sim::Time::nanos(rec.gen_time_ns), sim_->now());
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kItemDelivered, id(),
                   trace::kNoPeer, (DataItemKey{rec.source, rec.seq}.packed()),
                   sim_->now().as_nanos() - rec.gen_time_ns);
  }

  // Re-flood once, after a jitter, carrying our own cost E (paper §4.1:
  // add the transmission cost before resending). Exploratory events follow
  // gradients: a node nobody tasked (no gradient at all — possible under
  // directional interests) does not forward them.
  if (!rec.forward_scheduled && !gradients_.empty()) {
    rec.forward_scheduled = true;
    const MsgId mid = msg.msg_id;
    sim_->schedule_in(rng_.jitter(params_.exploratory_jitter), [this, mid] {
      if (!mac_->alive()) return;
      auto it2 = expl_cache_.find(mid);
      if (it2 == expl_cache_.end()) return;
      auto fwd = make_msg<ExploratoryMsg>();
      fwd->msg_id = mid;
      fwd->source = it2->second.source;
      fwd->seq = it2->second.seq;
      fwd->gen_time_ns = it2->second.gen_time_ns;
      fwd->cost_e = it2->second.my_cost();
      ++stats_.exploratory_sent;
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kExploratorySend, id(),
                     net::kBroadcast, mid, fwd->cost_e);
      net::Frame f;
      f.dst = net::kBroadcast;
      f.bytes = params_.event_bytes;
      f.payload = std::move(fwd);
      mac_->send(std::move(f));
    });
  }

  on_new_exploratory(rec, msg.msg_id);
  if (is_sink_) sink_on_new_exploratory(msg.msg_id);
}

// ----------------------------------------------------------- reinforcement

void DiffusionNode::propagate_reinforcement(MsgId id_of_expl, bool force) {
  auto it = expl_cache_.find(id_of_expl);
  if (it == expl_cache_.end()) return;
  ExplRecord& rec = it->second;
  if (rec.source == id()) return;  // we are the origin; tree complete
  const net::NodeId up = choose_upstream(id_of_expl);
  if (up == net::kNoNode) return;
  if (up == rec.last_upstream && !force) return;
  rec.last_upstream = up;
  send_reinforcement(up, id_of_expl, force);
}

void DiffusionNode::handle_reinforcement(const ReinforcementMsg& msg,
                                         net::NodeId from) {
  WSN_LOG_AT(sim::LogLevel::kTrace, sim_->now(), kTag,
             "node %u reinforced by %u (msg %llu)", id(), from,
             static_cast<unsigned long long>(msg.exploratory_id));
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kReinforceRecv, id(), from,
                 msg.exploratory_id, msg.force ? 1 : 0);
  auto [git, fresh] = gradients_.try_emplace(from);
  Gradient& g = git->second;
  if (fresh) {
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kGradientNew, id(), from,
                   GradientType::kData, 0);
  }
  if (fresh || g.type != GradientType::kData) {
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kTreeChange, id(), from, 1, 0);
  }
  g.type = GradientType::kData;
  g.expires = sim_->now() + params_.gradient_timeout;
  propagate_reinforcement(msg.exploratory_id, msg.force);
}

void DiffusionNode::handle_negative(net::NodeId from) {
  WSN_LOG_AT(sim::LogLevel::kDebug, sim_->now(), kTag,
             "node %u negatively reinforced by %u", id(), from);
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kNegativeRecv, id(), from, 0, 0);
  degrade_gradient(from);
  if (!has_data_gradient_out() && !is_sink_) {
    // All downstream demand gone: stop expecting data and cascade upstream.
    cascade_negative_upstream();
  }
}

// -------------------------------------------------------------------- data

void DiffusionNode::handle_data(const DataMsg& msg, net::NodeId from) {
  WSN_AUDIT_ONLY(audit_purge_cadence();)
  WSN_TRACE_EMIT(sim_, trace::RecordKind::kDataRecv, id(), from, msg.msg_id,
                 msg.items.size());
  if (!seen_data_msgs_.try_emplace(msg.msg_id, sim_->now()).second) {
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kCacheHit, id(), from, msg.msg_id,
                   trace::TraceCache::kSeenDataMsgs);
    return;  // duplicate (e.g. MAC retransmission after a lost ACK)
  }
  ++stats_.aggregates_received;
  const sim::Time now = sim_->now();
  auto [ns_it, fresh_feeder] = neighbor_data_.try_emplace(from);
  auto& nstate = ns_it->second;
  nstate.last_data = now;
  // Grace window: a brand-new feeder is treated as useful until it has had
  // one full truncation window to prove itself, so path hand-overs are not
  // negged mid-transition.
  if (fresh_feeder) nstate.last_useful = now;
  last_data_in_ = now;

  IncomingAgg& rec = next_window_slot();
  rec.from = from;
  rec.items.assign(msg.items.begin(), msg.items.end());
  rec.cost = msg.cost_e;
  for (const DataItem& item : msg.items) {
    const bool is_new = seen_items_.try_emplace(item.key.packed(), now).second;
    if (!is_new) {
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kCacheHit, id(), from,
                     item.key.packed(), trace::TraceCache::kSeenItems);
      continue;
    }
    rec.had_new_items = true;
    if (is_sink_) {
      last_source_item_[item.key.source] = now;
      if (hook_ != nullptr) {
        hook_->on_event_delivered(id(), item.key,
                                  sim::Time::nanos(item.gen_time_ns), now);
      }
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kItemDelivered, id(),
                     trace::kNoPeer, item.key.packed(),
                     now.as_nanos() - item.gen_time_ns);
    }
    if (passes_filters(item) &&
        pending_keys_.insert(item.key.packed()).second) {
      pending_.push_back(PendingItem{item, from});
    }
  }

  if (!is_aggregation_point()) {
    flush();
    return;
  }
  flush_timer_.arm_if_idle(params_.t_a);
  maybe_early_flush();
}

bool DiffusionNode::is_aggregation_point() const {
  // ≥ 2 distinct recent data feeders (self counts as one for sources).
  const sim::Time horizon = sim_->now() - params_.t_n;
  int feeders = source_active_ ? 1 : 0;
  for (const auto& [nb, st] : neighbor_data_) {
    if (st.last_data > horizon) ++feeders;
    if (feeders >= 2) return true;
  }
  return false;
}

DiffusionNode::IncomingAgg& DiffusionNode::next_window_slot() {
  if (window_live_ == window_aggs_.size()) window_aggs_.emplace_back();
  IncomingAgg& slot = window_aggs_[window_live_++];
  slot.from = net::kNoNode;
  slot.items.clear();  // capacity retained
  slot.cost = 0;
  slot.had_new_items = false;
  return slot;
}

void DiffusionNode::maybe_early_flush() {
  if (expected_sources_.empty() || pending_.empty()) return;
  // Flush as soon as everything we forwarded last time is present again
  // (paper §4.2: enough data ⇒ no further delay).
  have_scratch_.clear();
  for (const PendingItem& p : pending_) have_scratch_.insert(p.item.key.source);
  for (SourceId s : expected_sources_) {
    if (!have_scratch_.contains(s)) return;
  }
  flush();
}

void DiffusionNode::flush() {
  flush_timer_.cancel();
  if (window_live_ == 0 && pending_.empty()) return;

  // Everything below works out of capacity-retaining scratch buffers and
  // the live window/pending prefixes, consumed on every exit path, so a
  // warm flush performs no heap allocation.
  const std::span<const IncomingAgg> window{window_aggs_.data(), window_live_};
  union_scratch_.clear();
  union_scratch_.reserve(pending_.size());
  for (const PendingItem& p : pending_) union_scratch_.push_back(p.item);

  decision_scratch_.outgoing_cost = 0;
  decision_scratch_.useful_neighbors.clear();
  flush_policy(union_scratch_, window, decision_scratch_);
  const sim::Time now = sim_->now();
  for (net::NodeId nb : decision_scratch_.useful_neighbors) {
    if (nb != id()) neighbor_data_[nb].last_useful = now;
  }

  const auto consume = [this] {
    window_live_ = 0;
    pending_.clear();
    pending_keys_.clear();
  };

  if (union_scratch_.empty()) {
    consume();
    return;
  }
  if (is_sink_ && !has_data_gradient_out()) {
    consume();
    return;  // consumed here
  }

  const auto& gradients = live_data_gradients();
  bool sent_any = false;
  if (!gradients.empty()) {
    expected_sources_.clear();
    for (const DataItem& item : union_scratch_) {
      expected_sources_.insert(item.key.source);
    }
    // Split horizon: each downstream neighbour gets every pending item
    // except the ones it delivered to us itself — this keeps items (and
    // therefore set-cover weight) from circulating around gradient cycles.
    for (net::NodeId nb : gradients) {
      auto msg = make_msg<DataMsg>(sim_->arena());
      msg->items.reserve(pending_.size());
      for (const PendingItem& p : pending_) {
        if (p.from != nb) msg->items.push_back(p.item);
      }
      if (msg->items.empty()) continue;
      // An in-use link keeps itself alive: dead next hops are torn down by
      // the MAC failure callback and useless ones by negative
      // reinforcement, so expiry only needs to reap *idle* gradients.
      gradients_[nb].expires = now + params_.gradient_timeout;
      msg->msg_id = fresh_msg_id();
      msg->cost_e = decision_scratch_.outgoing_cost;
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kDataSend, id(), nb, msg->msg_id,
                     msg->items.size());
      // lint:trace-ok — batch guard: skip the per-item loop when tracing off
      if (sim_->tracer() != nullptr) {
        for (const DataItem& item : msg->items) {
          WSN_TRACE_EMIT(sim_, trace::RecordKind::kItemForward, id(), nb,
                         item.key.packed(), msg->msg_id);
        }
      }
      const std::uint32_t bytes =
          params_.aggregation->size_bytes(msg->items.size());
      ++stats_.data_sent;
      net::Frame f;
      f.dst = nb;
      f.bytes = bytes;
      f.payload = std::static_pointer_cast<const net::Message>(std::move(msg));
      mac_->send(std::move(f));
      sent_any = true;
    }
  }
  if (!sent_any) {
    // No downstream at all, or every gradient points back at the items'
    // own provider (a split-horizon black hole). Either way this node is
    // not delivering: shed the demand and, if we are a source, re-advertise.
    stats_.items_dropped_no_gradient += union_scratch_.size();
    WSN_LOG_AT(sim::LogLevel::kDebug, now, kTag,
               "node %u dropped %zu items (no usable gradient, source=%d)",
               id(), union_scratch_.size(), source_active_ ? 1 : 0);
    cascade_negative_upstream();
    if (source_active_ &&
        now - last_orphan_exploratory_ > params_.interest_period) {
      last_orphan_exploratory_ = now;
      send_exploratory_now();
    }
  }
  consume();
}

// ------------------------------------------------------------- maintenance

void DiffusionNode::run_truncation() {
  trunc_timer_.arm(params_.t_n);
  if (!mac_->alive() || !params_.enable_truncation) return;
  // Aggregates awaiting their flush have not had their usefulness judged
  // yet; evaluate them first so fresh feeders are not negged prematurely.
  if (window_live_ > 0) flush();
  const sim::Time now = sim_->now();
  for (auto& [nb, st] : neighbor_data_) {
    const bool still_sending = st.last_data + params_.t_n > now;
    const bool was_useful = st.last_useful + params_.t_n > now;
    if (still_sending && !was_useful) {
      ++stats_.negatives_sent;
      WSN_LOG_AT(sim::LogLevel::kDebug, now, kTag, "node %u NR(trunc) -> %u",
                 id(), nb);
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kNegativeSend, id(), nb,
                     trace::NegativeReason::kTruncation, 0);
      send_control(nb, make_msg<NegativeReinforcementMsg>());
      // Reset the clock so the neighbour gets a full window to improve.
      st.last_useful = now;
    }
  }
}

void DiffusionNode::run_repair() {
  repair_timer_.arm(params_.repair_silence.scaled(0.5));
  if (!mac_->alive()) return;
  // Only the data *consumer* drives repair. Letting every on-tree node
  // re-pull after silence re-animates abandoned branches and fights the
  // truncation rule; the sink's forced reinforcement rebuilds the whole
  // path, routing around suspects marked by failed unicasts en route.
  if (!is_sink_) return;
  const sim::Time now = sim_->now();
  if (now - last_repair_ <= params_.repair_silence) return;

  // Re-pull each advertised source that has gone silent, via the best
  // cached upstream. Silence is measured per source so one live path does
  // not mask another's breakage.
  const sim::Time fresh_horizon = now - params_.exploratory_period * 2;
  // Latest advertisement per silent source. The per-source pick tie-breaks
  // on msg id, so it is independent of expl-cache iteration order; in the
  // healthy steady state nothing is silent and this map stays empty (no
  // allocation on the periodic path).
  sim::FlatMap<SourceId, std::pair<MsgId, sim::Time>> latest;
  for (auto& [mid, rec] : expl_cache_) {
    if (rec.source == id() || rec.first_seen < fresh_horizon) continue;
    const auto ls = last_source_item_.find(rec.source);
    const sim::Time last_heard =
        ls == last_source_item_.end() ? rec.first_seen : ls->second;
    if (now - last_heard <= params_.repair_silence) continue;
    auto [lit, inserted] = latest.try_emplace(rec.source, mid, rec.first_seen);
    if (!inserted && (rec.first_seen > lit->second.second ||
                      (rec.first_seen == lit->second.second &&
                       mid < lit->second.first))) {
      lit->second = {mid, rec.first_seen};
    }
  }
  // Repair in source order (FlatMap iterates keys ascending): the
  // reinforcement sends interleave with the rest of the event stream, so
  // iteration order must not leak into the trajectory.
  for (const auto& [source, pick] : latest) {
    ++stats_.repairs_attempted;
    propagate_reinforcement(pick.first, /*force=*/true);
  }
  if (!latest.empty()) last_repair_ = now;
}

void DiffusionNode::housekeeping() {
  housekeeping_timer_.arm(kHousekeepingPeriod);
  const sim::Time now = sim_->now();
  WSN_AUDIT_ONLY(audit_cache_bounds(now);)

  // Purge tallies feed the trace (one kCachePurge per cache that shrank).
  const auto trace_purge = [this](trace::TraceCache cache, std::size_t n) {
    if (n > 0) {
      WSN_TRACE_EMIT(sim_, trace::RecordKind::kCachePurge, id(),
                     trace::kNoPeer, cache, n);
    }
  };
  trace_purge(trace::TraceCache::kSeenItems,
              seen_items_.erase_if([&](const auto& kv) {
                return kv.second + params_.cache_ttl < now;
              }));
  trace_purge(trace::TraceCache::kSeenDataMsgs,
              seen_data_msgs_.erase_if([&](const auto& kv) {
                return kv.second + params_.cache_ttl < now;
              }));
  const sim::Time expl_ttl =
      params_.exploratory_period * 2 + kHousekeepingPeriod;
  trace_purge(trace::TraceCache::kExploratory,
              expl_cache_.erase_if([&](const auto& kv) {
                return kv.second.first_seen + expl_ttl < now;
              }));
  // ICM state is keyed by exploratory msg id; drop it with its event.
  trace_purge(trace::TraceCache::kIcm,
              icm_cache_.erase_if([&](const auto& kv) {
                return !expl_cache_.contains(kv.first);
              }));
  // A data gradient expiring off the tree is a topology event, not just a
  // purge, so those get a kTreeChange on top of the purge tally.
  trace_purge(trace::TraceCache::kGradients,
              gradients_.erase_if([&](const auto& kv) {
                const bool dead = kv.second.expires <= now;
                if (dead && kv.second.type == GradientType::kData) {
                  WSN_TRACE_EMIT(sim_, trace::RecordKind::kTreeChange, id(),
                                 kv.first, 0, 0);
                }
                return dead;
              }));
  trace_purge(trace::TraceCache::kSuspects,
              suspects_.erase_if([&](const auto& kv) {
                return kv.second <= now;
              }));
  trace_purge(trace::TraceCache::kSendFailures,
              send_failures_.erase_if([&](const auto& kv) {
                return !is_suspect(kv.first) && kv.second >= 2;
              }));
  trace_purge(trace::TraceCache::kNeighborData,
              neighbor_data_.erase_if([&](const auto& kv) {
                return kv.second.last_data + params_.t_n * 4 < now;
              }));

#if WSN_AUDIT_ENABLED
  // Post-purge: ICM state may briefly outlive an exploratory record between
  // sweeps (an ICM can arrive for an event we never received), but never
  // across one.
  for (const auto& [mid, rec] : icm_cache_) {
    (void)rec;
    WSN_AUDIT_CHECK(expl_cache_.contains(mid),
                    "icm cache entry survived the purge of its event");
  }
  last_housekeeping_ = now;
#endif
}

#if WSN_AUDIT_ENABLED
void DiffusionNode::audit_purge_cadence() const {
  // Rigs that never call start() have no purge cycle; nothing to check.
  if (!housekeeping_timer_.armed()) return;
  WSN_AUDIT_CHECK(sim_->now() - last_housekeeping_ <=
                      kHousekeepingPeriod + kHousekeepingJitter,
                  "duplicate-suppression purge cadence stalled");
}

void DiffusionNode::audit_cache_bounds(sim::Time now) const {
  // Every TTL cache entry must die at the first sweep after its TTL, so at
  // sweep time no entry can be older than TTL + one period (+ arm jitter).
  const sim::Time slack = kHousekeepingPeriod + kHousekeepingJitter;
  for (const auto& [key, stamp] : seen_items_) {
    (void)key;
    WSN_AUDIT_CHECK(stamp + params_.cache_ttl + slack >= now,
                    "seen_items entry outlived its TTL bound");
  }
  for (const auto& [mid, stamp] : seen_data_msgs_) {
    (void)mid;
    WSN_AUDIT_CHECK(stamp + params_.cache_ttl + slack >= now,
                    "seen_data_msgs entry outlived its TTL bound");
  }
  const sim::Time expl_ttl =
      params_.exploratory_period * 2 + kHousekeepingPeriod;
  for (const auto& [mid, rec] : expl_cache_) {
    (void)mid;
    WSN_AUDIT_CHECK(rec.first_seen + expl_ttl + slack >= now,
                    "exploratory cache entry outlived its TTL bound");
  }
}
#endif

// ======================================================= OpportunisticNode

void OpportunisticNode::sink_on_new_exploratory(MsgId id) {
  // Paper §2: reinforce the neighbour that delivered the previously-unseen
  // exploratory event — the empirically lowest-delay path — immediately.
  propagate_reinforcement(id);
}

net::NodeId OpportunisticNode::choose_upstream(MsgId id) const {
  auto it = expl_cache().find(id);
  if (it == expl_cache().end()) return net::kNoNode;
  const ExplRecord& rec = it->second;
  const diffusion::EnergyCost my_cost = rec.my_cost();
  for (const auto& [nb, cost] : rec.senders) {
    // Arrival order = empirically low delay. The strict cost bound keeps
    // the chain descending toward the source so reinforcement cannot loop.
    if (!unusable_upstream(nb) && cost < my_cost) return nb;
  }
  return net::kNoNode;
}

void OpportunisticNode::flush_policy(const std::vector<DataItem>& /*outgoing*/,
                                     std::span<const IncomingAgg> window,
                                     FlushDecision& d) {
  // No energy-cost accounting; a neighbour was useful if it delivered at
  // least one previously-unseen item this window.
  d.useful_neighbors.reserve(window.size());
  for (const IncomingAgg& agg : window) {
    if (agg.had_new_items && agg.from != id()) {
      d.useful_neighbors.push_back(agg.from);
    }
  }
  // A neighbour can appear once per aggregate; dedup only when there is
  // actually something to dedup.
  if (d.useful_neighbors.size() > 1) {
    std::sort(d.useful_neighbors.begin(), d.useful_neighbors.end());
    d.useful_neighbors.erase(
        std::unique(d.useful_neighbors.begin(), d.useful_neighbors.end()),
        d.useful_neighbors.end());
  }
}

}  // namespace wsn::diffusion
