#include "agg/set_cover.hpp"

#include <algorithm>
#include <cassert>

#include "sim/audit.hpp"

namespace wsn::agg {
namespace {

/// Arbitrary-width bitset sized at construction; enough for the small
/// universes that occur at a node's fan-in.
class Bits {
 public:
  explicit Bits(std::uint32_t n) : n_{n}, words_((n + 63) / 64, 0) {}

  void set(std::uint32_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  [[nodiscard]] bool test(std::uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  [[nodiscard]] std::uint32_t count() const {
    std::uint32_t c = 0;
    for (auto w : words_) c += static_cast<std::uint32_t>(__builtin_popcountll(w));
    return c;
  }
  [[nodiscard]] std::uint32_t count_and_not(const Bits& other) const {
    // |this \ other|
    std::uint32_t c = 0;
    for (std::size_t k = 0; k < words_.size(); ++k) {
      c += static_cast<std::uint32_t>(
          __builtin_popcountll(words_[k] & ~other.words_[k]));
    }
    return c;
  }
  void or_with(const Bits& other) {
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] |= other.words_[k];
  }
  [[nodiscard]] bool is_subset_of(const Bits& other) const {
    for (std::size_t k = 0; k < words_.size(); ++k) {
      if ((words_[k] & ~other.words_[k]) != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool covers_universe(std::uint32_t n) const {
    Bits full{n};
    for (std::uint32_t i = 0; i < n; ++i) full.set(i);
    return full.is_subset_of(*this);
  }

 private:
  std::uint32_t n_;
  std::vector<std::uint64_t> words_;
};

std::uint32_t infer_universe(std::span<const WeightedSet> family,
                             std::uint32_t given) {
  if (given != 0) return given;
  std::uint32_t m = 0;
  for (const auto& s : family) {
    for (auto e : s.elements) m = std::max(m, e + 1);
  }
  return m;
}

std::vector<Bits> family_masks(std::span<const WeightedSet> family,
                               std::uint32_t m) {
  std::vector<Bits> masks;
  masks.reserve(family.size());
  for (const auto& s : family) {
    Bits b{m};
    for (auto e : s.elements) {
      assert(e < m && "element outside universe");
      b.set(e);
    }
    masks.push_back(std::move(b));
  }
  return masks;
}

#if WSN_AUDIT_ENABLED
/// Audit-build check: a result flagged `covered` really covers [0, m).
void audit_cover(std::span<const WeightedSet> family, std::uint32_t m,
                 const SetCoverResult& result) {
  if (!result.covered) return;
  Bits got{m};
  for (std::size_t i : result.chosen) {
    WSN_AUDIT_CHECK(i < family.size(), "chosen index outside the family");
    for (auto e : family[i].elements) got.set(e);
  }
  WSN_AUDIT_CHECK(got.covers_universe(m),
                  "returned cover does not cover the universe");
}
#define WSN_COVER_AUDIT(family, m, result) audit_cover(family, m, result)
#else
#define WSN_COVER_AUDIT(family, m, result) ((void)0)
#endif

}  // namespace

SetCoverResult greedy_weighted_set_cover(std::span<const WeightedSet> family,
                                         std::uint32_t universe_size) {
  const std::uint32_t m = infer_universe(family, universe_size);
  SetCoverResult result;
  if (m == 0) {
    result.covered = true;
    return result;
  }
  const std::vector<Bits> masks = family_masks(family, m);

  Bits covered{m};
  std::uint32_t covered_count = 0;
  std::vector<char> chosen(family.size(), 0);

  while (covered_count < m) {
    // Pick the set minimising weight / |newly covered|.
    std::size_t best = family.size();
    double best_ratio = std::numeric_limits<double>::infinity();
    std::uint32_t best_gain = 0;
    for (std::size_t i = 0; i < family.size(); ++i) {
      if (chosen[i]) continue;
      const std::uint32_t gain = masks[i].count_and_not(covered);
      if (gain == 0) continue;
      const double ratio = family[i].weight / static_cast<double>(gain);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = i;
        best_gain = gain;
      }
    }
    if (best == family.size()) {
      // Universe not coverable by this family.
      result.covered = false;
      result.total_weight = 0.0;
      for (std::size_t i = 0; i < family.size(); ++i) {
        if (chosen[i]) result.chosen.push_back(i);
      }
      return result;
    }
    chosen[best] = 1;
    covered.or_with(masks[best]);
    covered_count += best_gain;
  }

  // Final step (paper §4.2): drop chosen sets fully covered by the union of
  // the other chosen sets. Scan from the most expensive down so the
  // costliest redundancy goes first.
  std::vector<std::size_t> chosen_idx;
  for (std::size_t i = 0; i < family.size(); ++i) {
    if (chosen[i]) chosen_idx.push_back(i);
  }
  std::vector<std::size_t> by_weight_desc = chosen_idx;
  std::sort(by_weight_desc.begin(), by_weight_desc.end(),
            [&](std::size_t a, std::size_t b) {
              if (family[a].weight != family[b].weight) {
                return family[a].weight > family[b].weight;
              }
              return a < b;
            });
  for (std::size_t candidate : by_weight_desc) {
    Bits rest{m};
    for (std::size_t i : chosen_idx) {
      if (chosen[i] && i != candidate) rest.or_with(masks[i]);
    }
    if (masks[candidate].is_subset_of(rest)) chosen[candidate] = 0;
  }

  result.covered = true;
  for (std::size_t i = 0; i < family.size(); ++i) {
    if (chosen[i]) {
      result.chosen.push_back(i);
      result.total_weight += family[i].weight;
    }
  }
  WSN_COVER_AUDIT(family, m, result);
  return result;
}

SetCoverResult exact_weighted_set_cover(std::span<const WeightedSet> family,
                                        std::uint32_t universe_size) {
  const std::uint32_t m = infer_universe(family, universe_size);
  assert(m <= 20 && "exact solver limited to universes of <= 20 elements");
  SetCoverResult result;
  if (m == 0) {
    result.covered = true;
    return result;
  }

  const std::uint32_t full = (m >= 32) ? 0xffffffffu : ((1u << m) - 1);
  std::vector<std::uint32_t> set_mask(family.size(), 0);
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (auto e : family[i].elements) set_mask[i] |= 1u << e;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(full + 1, kInf);
  std::vector<std::int32_t> choice(full + 1, -1);   // set added to reach state
  std::vector<std::uint32_t> parent(full + 1, 0);   // previous state
  dp[0] = 0.0;
  for (std::uint32_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] == kInf) continue;
    for (std::size_t i = 0; i < family.size(); ++i) {
      const std::uint32_t next = mask | set_mask[i];
      if (next == mask) continue;
      const double w = dp[mask] + family[i].weight;
      if (w < dp[next]) {
        dp[next] = w;
        choice[next] = static_cast<std::int32_t>(i);
        parent[next] = mask;
      }
    }
    if (mask == full) break;
  }

  if (dp[full] == kInf) {
    result.covered = false;
    return result;
  }
  result.covered = true;
  result.total_weight = dp[full];
  for (std::uint32_t cur = full; cur != 0; cur = parent[cur]) {
    result.chosen.push_back(static_cast<std::size_t>(choice[cur]));
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  WSN_COVER_AUDIT(family, m, result);
  return result;
}

std::vector<WeightedSet> transform_to_sources(
    std::span<const WeightedSet> event_sets,
    std::span<const std::vector<std::uint32_t>> event_sources) {
  assert(event_sets.size() == event_sources.size());
  std::vector<WeightedSet> out;
  out.reserve(event_sets.size());
  for (std::size_t i = 0; i < event_sets.size(); ++i) {
    assert(event_sets[i].elements.size() == event_sources[i].size());
    WeightedSet t;
    t.elements = event_sources[i];
    std::sort(t.elements.begin(), t.elements.end());
    t.elements.erase(std::unique(t.elements.begin(), t.elements.end()),
                     t.elements.end());
    const auto original = static_cast<double>(event_sets[i].elements.size());
    const auto distinct = static_cast<double>(t.elements.size());
    // w* = w · |S*| / |S| preserves the initial cost ratio w/|S| = w*/|S*|.
    t.weight = original > 0.0 ? event_sets[i].weight * distinct / original
                              : event_sets[i].weight;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace wsn::agg
