// Aggregation size functions (paper §3, §5.4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace wsn::agg {

/// Maps "how many distinct data items are in an aggregate" to the size in
/// bytes of the message that carries them.
///
/// The paper evaluates two of these end to end: *perfect* (aggregate size
/// equals one event, Figure 5-9) and *linear* (z(S) = d·|x| + h, Figure 10).
/// *Packing* and *timestamp* are the two lossless examples of §3, provided
/// for completeness and used in tests/examples.
class AggregationFn {
 public:
  virtual ~AggregationFn() = default;

  /// Size in bytes of an aggregate carrying `item_count` distinct items.
  /// Precondition: item_count >= 1.
  [[nodiscard]] virtual std::uint32_t size_bytes(
      std::size_t item_count) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Perfect aggregation: any number of items compress to one event's size.
/// The paper's default (64-byte aggregates).
class PerfectAggregation final : public AggregationFn {
 public:
  explicit PerfectAggregation(std::uint32_t event_bytes = 64)
      : event_bytes_{event_bytes} {}
  [[nodiscard]] std::uint32_t size_bytes(std::size_t) const override {
    return event_bytes_;
  }
  [[nodiscard]] std::string name() const override { return "perfect"; }

 private:
  std::uint32_t event_bytes_;
};

/// Linear aggregation: z(S_i) = d_i·|x| + h. Lossless but inefficient —
/// only the per-transmission header is shared (paper §5.4: |x| = 28 B,
/// h = 36 B).
class LinearAggregation final : public AggregationFn {
 public:
  explicit LinearAggregation(std::uint32_t item_bytes = 28,
                             std::uint32_t header_bytes = 36)
      : item_bytes_{item_bytes}, header_bytes_{header_bytes} {}
  [[nodiscard]] std::uint32_t size_bytes(std::size_t item_count) const override {
    return static_cast<std::uint32_t>(item_count) * item_bytes_ + header_bytes_;
  }
  [[nodiscard]] std::string name() const override { return "linear"; }

 private:
  std::uint32_t item_bytes_;
  std::uint32_t header_bytes_;
};

/// Packing aggregation: whole events are packed unmodified behind a single
/// header; only per-transmission overhead is saved (paper §3).
class PackingAggregation final : public AggregationFn {
 public:
  explicit PackingAggregation(std::uint32_t event_bytes = 64,
                              std::uint32_t header_bytes = 36)
      : event_bytes_{event_bytes}, header_bytes_{header_bytes} {}
  [[nodiscard]] std::uint32_t size_bytes(std::size_t item_count) const override {
    return static_cast<std::uint32_t>(item_count) * event_bytes_ + header_bytes_;
  }
  [[nodiscard]] std::string name() const override { return "packing"; }

 private:
  std::uint32_t event_bytes_;
  std::uint32_t header_bytes_;
};

/// Timestamp aggregation: temporally-correlated events share the redundant
/// high-order timestamp fields, so every item after the first is cheaper
/// (paper §3's remote-surveillance example).
class TimestampAggregation final : public AggregationFn {
 public:
  TimestampAggregation(std::uint32_t first_item_bytes = 28,
                       std::uint32_t next_item_bytes = 24,
                       std::uint32_t header_bytes = 36)
      : first_item_bytes_{first_item_bytes},
        next_item_bytes_{next_item_bytes},
        header_bytes_{header_bytes} {}
  [[nodiscard]] std::uint32_t size_bytes(std::size_t item_count) const override {
    if (item_count == 0) return header_bytes_;
    return header_bytes_ + first_item_bytes_ +
           static_cast<std::uint32_t>(item_count - 1) * next_item_bytes_;
  }
  [[nodiscard]] std::string name() const override { return "timestamp"; }

 private:
  std::uint32_t first_item_bytes_;
  std::uint32_t next_item_bytes_;
  std::uint32_t header_bytes_;
};

using AggregationFnPtr = std::shared_ptr<const AggregationFn>;

}  // namespace wsn::agg
