// Weighted set cover: greedy heuristic (paper §4.2) and exact solver.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace wsn::agg {

/// One candidate subset in a weighted set-cover instance. Elements are
/// indices into an implicit universe [0, universe_size).
struct WeightedSet {
  std::vector<std::uint32_t> elements;  ///< need not be sorted; dups ignored
  double weight = 1.0;
};

/// Result of a cover computation.
struct SetCoverResult {
  std::vector<std::size_t> chosen;  ///< indices into the input family
  double total_weight = 0.0;
  bool covered = false;  ///< false if the family cannot cover the universe
};

/// Greedy heuristic for weighted set cover (Chvátal): repeatedly pick the
/// set with the lowest cost ratio weight / |uncovered ∩ set|, then drop
/// redundant chosen sets (paper §4.2's final step). Approximation ratio
/// ln(d) + 1 where d is the largest set size.
///
/// `universe_size` bounds element indices; pass 0 to infer it as
/// max(element)+1 over all sets. Ties are broken toward the lower set
/// index, deterministically.
SetCoverResult greedy_weighted_set_cover(std::span<const WeightedSet> family,
                                         std::uint32_t universe_size = 0);

/// Exact minimum-weight cover by dynamic programming over element subsets.
/// Requires universe_size <= 20 (2^m states); intended for tests and for
/// quality benchmarking of the greedy heuristic.
SetCoverResult exact_weighted_set_cover(std::span<const WeightedSet> family,
                                        std::uint32_t universe_size = 0);

/// The paper's §4.3 source transform: given aggregates whose elements are
/// *events* tagged with the source that produced them, produce the
/// source-level instance. Each aggregate's element set becomes the set of
/// distinct sources, and its weight becomes w·|S*|/|S| so the initial cost
/// ratio is preserved.
///
/// `event_sources[i][j]` is the source index of element j of aggregate i.
std::vector<WeightedSet> transform_to_sources(
    std::span<const WeightedSet> event_sets,
    std::span<const std::vector<std::uint32_t>> event_sources);

}  // namespace wsn::agg
