#include "scenario/failure.hpp"

#include <algorithm>
#include <utility>

#include "trace/trace.hpp"

namespace wsn::scenario {

FailureProcess::FailureProcess(sim::Simulator& sim,
                               std::vector<mac::MacBase*> macs,
                               std::vector<char> protected_nodes,
                               const FailureModel& model, sim::Rng rng)
    : sim_{&sim},
      macs_{std::move(macs)},
      protected_{std::move(protected_nodes)},
      model_{model},
      rng_{rng} {
  if (model_.enabled) schedule_next(model_.period);
}

void FailureProcess::schedule_next(sim::Time in) {
  sim_->schedule_in(in, [this] { rotate(); });
}

void FailureProcess::rotate() {
  // Revive-before-draw: last round's victims rejoin the eligible pool
  // before this round's are chosen.
  for (net::NodeId id : down_) {
    macs_[id]->set_alive(true);
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kNodeUp, id, trace::kNoPeer, 0, 0);
  }
  down_.clear();

  std::vector<net::NodeId> eligible;
  for (net::NodeId id = 0; id < macs_.size(); ++id) {
    if (!model_.protect_endpoints || !protected_[id]) eligible.push_back(id);
  }
  const auto victims = static_cast<std::size_t>(
      model_.fraction * static_cast<double>(macs_.size()) + 0.5);
  rng_.shuffle(eligible);
  for (std::size_t i = 0; i < std::min(victims, eligible.size()); ++i) {
    macs_[eligible[i]]->set_alive(false);
    WSN_TRACE_EMIT(sim_, trace::RecordKind::kNodeDown, eligible[i],
                   trace::kNoPeer, 0, 0);
    down_.push_back(eligible[i]);
  }
  ++rotations_;
  schedule_next(model_.period);
}

}  // namespace wsn::scenario
