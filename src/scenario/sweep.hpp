// Replicated runs and environment-based sizing for the bench harnesses.
#pragma once

#include <cstdint>

#include "scenario/experiment.hpp"
#include "stats/accumulator.hpp"

namespace wsn::scenario {

/// Metric averages over several independently generated fields (the paper
/// averages each point over ten fields).
struct AveragedPoint {
  stats::Accumulator energy;         ///< J/node/received distinct event
  stats::Accumulator active_energy;  ///< tx+rx only, same units
  stats::Accumulator delay;          ///< seconds
  stats::Accumulator delivery;       ///< ratio
  stats::Accumulator degree;         ///< radio density actually realised
  int replicates = 0;
};

/// Runs `replicates` copies of `base` with seeds seed0, seed0+1, ... and
/// averages the paper's three metrics.
///
/// `jobs` > 1 runs the replicates on that many workers; `jobs` <= 0 uses
/// the WSN_JOBS env default (hardware concurrency); `jobs` == 1 — or
/// WSN_JOBS=1 — forces the plain serial loop. Every replicate gets its own
/// Simulator and Rng and writes into a seed-indexed slot; slots are merged
/// in seed order, so the accumulator streams (and hence every mean, SEM and
/// digest downstream) are bit-identical for any job count.
AveragedPoint run_replicates(const ExperimentConfig& base, int replicates,
                             std::uint64_t seed0 = 1, int jobs = 0);

/// Order-sensitive digest of an averaged point's full accumulator state
/// (count/mean/variance/min/max per metric). Two runs with equal digests
/// accumulated bit-identical values in the same order — the bar the
/// parallel engine is held to against the serial path.
[[nodiscard]] std::uint64_t digest_of(const AveragedPoint& point);

/// Parses env var `name` as a whole-string integer in [lo, hi]. Unset
/// returns `fallback`; malformed, partial (e.g. "12abc"), overflowing or
/// out-of-range values warn on stderr and return `fallback` — they are
/// never silently truncated the way atoi would.
long env_long(const char* name, long fallback, long lo, long hi);

/// Same contract for finite doubles in [lo, hi].
double env_double(const char* name, double fallback, double lo, double hi);

/// Number of fields per sweep point: WSN_FIELDS env var, else `fallback`.
int fields_from_env(int fallback = 5);

/// Simulated seconds per run: WSN_SIM_TIME env var, else `fallback`.
double sim_seconds_from_env(double fallback = 400.0);

}  // namespace wsn::scenario
