// Replicated runs and environment-based sizing for the bench harnesses.
#pragma once

#include <cstdint>

#include "scenario/experiment.hpp"
#include "stats/accumulator.hpp"

namespace wsn::scenario {

/// Metric averages over several independently generated fields (the paper
/// averages each point over ten fields).
struct AveragedPoint {
  stats::Accumulator energy;         ///< J/node/received distinct event
  stats::Accumulator active_energy;  ///< tx+rx only, same units
  stats::Accumulator delay;          ///< seconds
  stats::Accumulator delivery;       ///< ratio
  stats::Accumulator degree;         ///< radio density actually realised
  int replicates = 0;
};

/// Runs `replicates` copies of `base` with seeds seed0, seed0+1, ... and
/// averages the paper's three metrics.
AveragedPoint run_replicates(const ExperimentConfig& base, int replicates,
                             std::uint64_t seed0 = 1);

/// Number of fields per sweep point: WSN_FIELDS env var, else `fallback`.
int fields_from_env(int fallback = 5);

/// Simulated seconds per run: WSN_SIM_TIME env var, else `fallback`.
double sim_seconds_from_env(double fallback = 400.0);

}  // namespace wsn::scenario
