// Deterministic parallel replicate engine: a fixed-size thread pool that
// fans (config, seed) replicates out across workers and lets callers merge
// results in seed order, so parallel sweeps are bit-identical to serial
// ones regardless of WSN_JOBS.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsn::scenario {

/// Fixed-size worker pool. Each `run_indexed` call dispatches indices
/// [0, count) to the workers; which worker runs which index is racy by
/// design — determinism comes from writing into index-addressed slots and
/// merging in index order, never from scheduling.
///
/// Thread-safety contract for tasks: a task may touch only its own slot
/// plus state that is thread-safe process-wide (sim::Logger, the WSN_AUDIT
/// counters). Everything a `run_experiment` call uses is otherwise local to
/// the call, so replicates parallelise without locks in the hot path.
class ThreadPool {
 public:
  /// Spawns `workers` (>= 1) threads that idle until work arrives.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(i) for every i in [0, count) across the workers and blocks
  /// until all complete. Rethrows the first task exception (remaining tasks
  /// still run to completion first). Not reentrant: one batch at a time.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // guarded by mu_
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t done_ = 0;
  std::uint64_t batch_ = 0;  // bumped per run_indexed so idle workers wake
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Worker count for parallel sweeps: the WSN_JOBS env var, validated like
/// the other knobs (whole string, range [1, 4096]; invalid values warn on
/// stderr and are ignored); default is the hardware concurrency. Read once
/// and cached for the life of the process — the shared pool is sized from
/// it, so later env changes are ignored by design.
int jobs_from_env();

/// Process-wide pool sized by jobs_from_env(), created on first use.
/// Benches reuse it across every sweep point instead of respawning threads.
ThreadPool& shared_pool();

/// Dispatches fn(i) for i in [0, count): serially in index order when the
/// effective job count (`jobs`, or WSN_JOBS when jobs <= 0) is 1, otherwise
/// on a pool of min(jobs, count) workers. This is the single entry point
/// the replicate engine and the bench harnesses parallelise through.
void for_each_index(std::size_t count,
                    const std::function<void(std::size_t)>& fn, int jobs = 0);

}  // namespace wsn::scenario
