// Node-failure model and rotation process of paper §5.3.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/mac_base.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wsn::scenario {

/// Node-failure model of §5.3: every `period`, revive the previous victims
/// and turn off `fraction` of the remaining nodes — no settling time.
struct FailureModel {
  bool enabled = false;
  double fraction = 0.2;
  sim::Time period = sim::Time::seconds(30.0);
  /// Sources and sinks are never turned off, so the workload itself
  /// survives (reconstruction `[R]`; the paper does not state this but the
  /// metrics are meaningless if the only sink dies).
  bool protect_endpoints = true;
};

/// Drives the §5.3 failure process for the lifetime of a run.
///
/// Rotation semantics: the previous victims are revived *before* the new
/// victim set is drawn, so every non-protected node is eligible each round
/// and a node can be unlucky in consecutive rotations. Victim choice is a
/// pure function of the rng stream handed in (fork 3 of the experiment
/// seed), independent of wall time or node state.
class FailureProcess {
 public:
  FailureProcess(sim::Simulator& sim, std::vector<mac::MacBase*> macs,
                 std::vector<char> protected_nodes, const FailureModel& model,
                 sim::Rng rng);

  FailureProcess(const FailureProcess&) = delete;
  FailureProcess& operator=(const FailureProcess&) = delete;

  /// Nodes currently powered off, in the order they were struck.
  [[nodiscard]] const std::vector<net::NodeId>& down_nodes() const {
    return down_;
  }
  /// Rotations performed so far.
  [[nodiscard]] std::uint64_t rotations() const { return rotations_; }

 private:
  void schedule_next(sim::Time in);
  void rotate();

  sim::Simulator* sim_;
  std::vector<mac::MacBase*> macs_;
  std::vector<char> protected_;
  FailureModel model_;
  sim::Rng rng_;
  std::vector<net::NodeId> down_;
  std::uint64_t rotations_ = 0;
};

}  // namespace wsn::scenario
