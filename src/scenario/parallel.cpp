#include "scenario/parallel.hpp"

#include <algorithm>

#include "scenario/sweep.hpp"

namespace wsn::scenario {

ThreadPool::ThreadPool(unsigned workers) {
  workers_.reserve(std::max(1u, workers));
  for (unsigned i = 0; i < std::max(1u, workers); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_batch = 0;
  std::unique_lock lk{mu_};
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || batch_ != seen_batch; });
    if (stop_) return;
    seen_batch = batch_;
    while (next_ < count_) {
      const std::size_t i = next_++;
      lk.unlock();
      try {
        (*fn_)(i);
      } catch (...) {
        lk.lock();
        if (!error_) error_ = std::current_exception();
        lk.unlock();
      }
      lk.lock();
      ++done_;
      if (done_ == count_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::unique_lock lk{mu_};
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  done_ = 0;
  error_ = nullptr;
  ++batch_;
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return done_ == count_; });
  fn_ = nullptr;
  count_ = 0;
  if (error_) std::rethrow_exception(error_);
}

int jobs_from_env() {
  static const int cached = [] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<int>(env_long("WSN_JOBS", hw, 1, 4096));
  }();
  return cached;
}

ThreadPool& shared_pool() {
  static ThreadPool pool{static_cast<unsigned>(jobs_from_env())};
  return pool;
}

void for_each_index(std::size_t count,
                    const std::function<void(std::size_t)>& fn, int jobs) {
  const int effective = jobs > 0 ? jobs : jobs_from_env();
  if (effective <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (jobs <= 0) {
    // Env-default path: reuse the long-lived pool across sweep points.
    shared_pool().run_indexed(count, fn);
    return;
  }
  const auto workers = static_cast<unsigned>(
      std::min<std::size_t>(static_cast<std::size_t>(effective), count));
  ThreadPool pool{workers};
  pool.run_indexed(count, fn);
}

}  // namespace wsn::scenario
