#include "scenario/sweep.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "scenario/parallel.hpp"
#include "stats/digest.hpp"

namespace wsn::scenario {
namespace {

void warn_ignored(const char* name, const char* value, const char* reason) {
  std::fprintf(stderr, "[wsn] ignoring %s=\"%s\" (%s); using the default\n",
               name, value, reason);
}

}  // namespace

long env_long(const char* name, long fallback, long lo, long hi) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    warn_ignored(name, s, "not an integer");
    return fallback;
  }
  if (errno == ERANGE) {
    warn_ignored(name, s, "overflows long");
    return fallback;
  }
  if (v < lo || v > hi) {
    warn_ignored(name, s, "out of range");
    return fallback;
  }
  return v;
}

double env_double(const char* name, double fallback, double lo, double hi) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    warn_ignored(name, s, "not a number");
    return fallback;
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    warn_ignored(name, s, "not a finite value");
    return fallback;
  }
  if (v < lo || v > hi) {
    warn_ignored(name, s, "out of range");
    return fallback;
  }
  return v;
}

AveragedPoint run_replicates(const ExperimentConfig& base, int replicates,
                             std::uint64_t seed0, int jobs) {
  AveragedPoint point;
  if (replicates <= 0) return point;

  const auto count = static_cast<std::size_t>(replicates);
  const auto merge = [&point](const RunResult& res) {
    point.energy.add(res.metrics.avg_dissipated_energy);
    point.active_energy.add(res.metrics.avg_active_energy);
    point.delay.add(res.metrics.avg_delay);
    point.delivery.add(res.metrics.delivery_ratio);
    point.degree.add(res.average_degree);
    ++point.replicates;
  };

  const int effective = jobs > 0 ? jobs : jobs_from_env();
  if (effective <= 1 || replicates == 1) {
    // Serial path (WSN_JOBS=1): run and merge in one pass, no buffering.
    for (std::size_t r = 0; r < count; ++r) {
      ExperimentConfig cfg = base;
      cfg.seed = seed0 + r;
      merge(run_experiment(cfg));
    }
    return point;
  }

  // Parallel path: every replicate writes its own seed-indexed slot; the
  // merge below walks the slots in seed order, so the accumulators see the
  // exact value stream the serial path produces.
  std::vector<RunResult> slots(count);
  for_each_index(
      count,
      [&](std::size_t r) {
        ExperimentConfig cfg = base;
        cfg.seed = seed0 + r;
        slots[r] = run_experiment(cfg);
      },
      jobs);
  for (const RunResult& res : slots) merge(res);
  return point;
}

std::uint64_t digest_of(const AveragedPoint& point) {
  stats::Digest d;
  for (const stats::Accumulator* a :
       {&point.energy, &point.active_energy, &point.delay, &point.delivery,
        &point.degree}) {
    d.add(a->count());
    d.add(a->mean());
    d.add(a->variance());
    d.add(a->min());
    d.add(a->max());
  }
  d.add(static_cast<std::int64_t>(point.replicates));
  return d.value();
}

int fields_from_env(int fallback) {
  return static_cast<int>(env_long("WSN_FIELDS", fallback, 1, 1000000));
}

double sim_seconds_from_env(double fallback) {
  return env_double("WSN_SIM_TIME", fallback, 1e-9, 1e9);
}

}  // namespace wsn::scenario
