#include "scenario/sweep.hpp"

#include <cstdlib>

namespace wsn::scenario {

AveragedPoint run_replicates(const ExperimentConfig& base, int replicates,
                             std::uint64_t seed0) {
  AveragedPoint point;
  for (int r = 0; r < replicates; ++r) {
    ExperimentConfig cfg = base;
    cfg.seed = seed0 + static_cast<std::uint64_t>(r);
    const RunResult res = run_experiment(cfg);
    point.energy.add(res.metrics.avg_dissipated_energy);
    point.active_energy.add(res.metrics.avg_active_energy);
    point.delay.add(res.metrics.avg_delay);
    point.delivery.add(res.metrics.delivery_ratio);
    point.degree.add(res.average_degree);
    ++point.replicates;
  }
  return point;
}

int fields_from_env(int fallback) {
  if (const char* s = std::getenv("WSN_FIELDS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

double sim_seconds_from_env(double fallback) {
  if (const char* s = std::getenv("WSN_SIM_TIME")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace wsn::scenario
