// Experiment configuration and runner — the library's top-level API.
//
// One `ExperimentConfig` describes one simulated sensor field + workload;
// `run_experiment` builds the full stack (field → channel → MACs →
// diffusion nodes), runs it, and returns the paper's metrics plus traffic
// accounting and the final aggregation tree for inspection.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithm.hpp"
#include "diffusion/types.hpp"
#include "mac/params.hpp"
#include "mac/tdma_mac.hpp"
#include "net/field.hpp"
#include "scenario/failure.hpp"
#include "stats/metrics.hpp"
#include "trace/trace.hpp"

namespace wsn::scenario {

/// Where the workload endpoints sit (paper §5.1, §5.4).
enum class SourcePlacement {
  kCorner,  ///< random nodes inside the 80×80 m bottom-left corner
  kRandom,  ///< random nodes anywhere in the field
};

/// Which link layer the nodes run (paper §5.1 uses a modified 802.11;
/// §4.2 sketches the TDMA alternative).
enum class MacType { kCsma, kTdma };

struct ExperimentConfig {
  net::FieldSpec field;  ///< 200×200 m, radio range 40 m by default
  core::Algorithm algorithm = core::Algorithm::kGreedy;
  MacType mac_type = MacType::kCsma;
  mac::TdmaParams tdma;  ///< used when mac_type == kTdma

  std::size_t num_sources = 5;
  std::size_t num_sinks = 1;
  SourcePlacement source_placement = SourcePlacement::kCorner;
  /// Source corner (paper: 80×80 m bottom-left).
  net::Rect source_rect{0.0, 0.0, 80.0, 80.0};
  /// First-sink corner (paper: 36×36 m top-right); extra sinks are uniform.
  net::Rect sink_rect{164.0, 164.0, 200.0, 200.0};

  /// Geographic scope of the sensing task carried by interests. Defaults
  /// to the whole field (the paper's setting); narrowing it to the source
  /// corner enables the §2 directional-interest optimisation to pay off.
  std::optional<net::Rect> interest_region;

  diffusion::DiffusionParams diffusion;
  mac::PhyParams phy;
  mac::EnergyParams energy;
  FailureModel failures;

  sim::Time duration = sim::Time::seconds(400.0);
  std::uint64_t seed = 1;

  /// Structured event tracing (src/trace). Disabled by default; when left
  /// disabled here, run_experiment falls back to the WSN_TRACE /
  /// WSN_TRACE_RING environment knobs so any experiment binary can be
  /// traced without a config change.
  trace::TraceSpec trace;
};

/// Digest of the workload-defining config fields, written into trace
/// headers so `trace_tool diff` can refuse to compare runs of different
/// setups. Two configs with equal digests describe the same experiment.
[[nodiscard]] std::uint64_t config_digest(const ExperimentConfig& config);

/// Everything a run produces.
struct RunResult {
  stats::RunMetrics metrics;

  // Shape of the field actually used.
  double average_degree = 0.0;
  std::vector<net::NodeId> sources;
  std::vector<net::NodeId> sinks;

  // Per-node energy spread (paper §3: aggregated paths concentrate
  // traffic, which matters for network lifetime).
  std::vector<double> node_energy_joules;  ///< indexed by NodeId
  std::vector<net::Vec2> node_positions;   ///< the generated field
  double energy_max_node_joules = 0.0;     ///< hottest node
  double energy_mean_node_joules = 0.0;
  double energy_stddev_node_joules = 0.0;
  /// Simple lifetime proxy: with an E-joule budget per node, when would the
  /// first node die? budget / max-node power (extrapolated from this run).
  [[nodiscard]] double first_death_seconds(double budget_joules,
                                           double run_seconds) const {
    if (energy_max_node_joules <= 0.0 || run_seconds <= 0.0) return 0.0;
    return budget_joules / (energy_max_node_joules / run_seconds);
  }

  // Traffic accounting summed over nodes.
  std::uint64_t events_dispatched = 0;  ///< engine events fired this run
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t arrivals_corrupted = 0;
  std::uint64_t drops = 0;
  diffusion::ProtocolStats protocol;

  // Message/transmission pool occupancy at the end of the run (benches
  // report these; the live count bounds the protocol's working set).
  std::uint64_t pool_acquires = 0;       ///< pooled allocations, total
  std::uint64_t pool_slots_created = 0;  ///< distinct heap blocks ever made
  std::uint64_t pool_slots_live = 0;     ///< checked out at harvest time
  std::uint64_t pool_bytes_reserved = 0;

  // Final data-gradient tree: one (node, downstream-neighbour) edge per
  // live data gradient at the end of the run.
  std::vector<std::pair<net::NodeId, net::NodeId>> tree_edges;

  // Per-kind trace record tallies; all zero unless the run was traced.
  trace::CounterTable trace_counters;
};

/// Builds, runs and tears down one experiment.
RunResult run_experiment(const ExperimentConfig& config);

}  // namespace wsn::scenario
