#include "scenario/experiment.hpp"

#include <algorithm>

#include "mac/channel.hpp"
#include "mac/csma_mac.hpp"
#include "mac/tdma_mac.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "stats/accumulator.hpp"
#include "trees/models.hpp"

namespace wsn::scenario {
namespace {

/// Drives the §5.3 failure process for the lifetime of a run.
class FailureProcess {
 public:
  FailureProcess(sim::Simulator& sim, std::vector<mac::MacBase*> macs,
                 std::vector<char> protected_nodes, const FailureModel& model,
                 sim::Rng rng)
      : sim_{&sim},
        macs_{std::move(macs)},
        protected_{std::move(protected_nodes)},
        model_{model},
        rng_{rng} {
    if (model_.enabled) schedule_next(model_.period);
  }

 private:
  void schedule_next(sim::Time in) {
    sim_->schedule_in(in, [this] { rotate(); });
  }

  void rotate() {
    for (net::NodeId id : down_) macs_[id]->set_alive(true);
    down_.clear();

    std::vector<net::NodeId> eligible;
    for (net::NodeId id = 0; id < macs_.size(); ++id) {
      if (!model_.protect_endpoints || !protected_[id]) eligible.push_back(id);
    }
    const auto victims = static_cast<std::size_t>(
        model_.fraction * static_cast<double>(macs_.size()) + 0.5);
    rng_.shuffle(eligible);
    for (std::size_t i = 0; i < std::min(victims, eligible.size()); ++i) {
      macs_[eligible[i]]->set_alive(false);
      down_.push_back(eligible[i]);
    }
    schedule_next(model_.period);
  }

  sim::Simulator* sim_;
  std::vector<mac::MacBase*> macs_;
  std::vector<char> protected_;
  FailureModel model_;
  sim::Rng rng_;
  std::vector<net::NodeId> down_;
};

}  // namespace

RunResult run_experiment(const ExperimentConfig& config) {
  // A workload needs at least one node per endpoint; degenerate configs
  // (e.g. `wsnctl --nodes 0`) return an empty result instead of indexing
  // into empty node tables.
  if (config.field.nodes == 0 ||
      config.field.nodes < config.num_sources + config.num_sinks) {
    return RunResult{};
  }
  sim::Rng master{config.seed};
  sim::Rng field_rng = master.fork(1);
  sim::Rng placement_rng = master.fork(2);
  sim::Rng failure_rng = master.fork(3);

  const auto positions =
      net::generate_connected_field(config.field, field_rng);
  const net::Topology topo{positions, config.field.radio_range_m,
                           config.field.carrier_sense_range_m};

  sim::Simulator sim;
  mac::Channel channel{sim, topo, config.phy.propagation};

  std::vector<std::unique_ptr<mac::MacBase>> macs;
  macs.reserve(topo.node_count());
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    if (config.mac_type == MacType::kCsma) {
      macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, id,
                                                    config.phy, config.energy,
                                                    master.fork(1000 + id)));
    } else {
      macs.push_back(std::make_unique<mac::TdmaMac>(
          sim, channel, id, static_cast<std::uint32_t>(topo.node_count()),
          config.tdma, config.energy));
    }
  }

  stats::MetricsCollector collector;
  std::vector<std::unique_ptr<diffusion::DiffusionNode>> nodes;
  nodes.reserve(topo.node_count());
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    nodes.push_back(core::make_diffusion_node(
        config.algorithm, sim, *macs[id], topo.position(id), config.diffusion,
        master.fork(2000 + id), &collector));
  }

  // --- workload placement ---
  RunResult result;
  if (config.source_placement == SourcePlacement::kCorner) {
    auto inst = trees::make_corner_instance(topo, config.num_sources,
                                            config.source_rect,
                                            config.sink_rect, placement_rng);
    result.sources.assign(inst.sources.begin(), inst.sources.end());
    result.sinks.push_back(inst.sink);
  } else {
    auto inst = trees::make_random_sources_instance(topo, config.num_sources,
                                                    placement_rng);
    result.sources.assign(inst.sources.begin(), inst.sources.end());
    // Even with random sources the first sink uses the paper's corner rect.
    auto sink_inst = trees::make_corner_instance(
        topo, 0, config.source_rect, config.sink_rect, placement_rng);
    net::NodeId sink = sink_inst.sink;
    while (std::find(result.sources.begin(), result.sources.end(), sink) !=
           result.sources.end()) {
      sink = static_cast<net::NodeId>(placement_rng.uniform_int(
          0, static_cast<std::int64_t>(topo.node_count()) - 1));
    }
    result.sinks.push_back(sink);
  }
  // Extra sinks (paper §5.4): uniformly scattered, avoiding duplicates.
  while (result.sinks.size() < config.num_sinks) {
    const auto candidate = static_cast<net::NodeId>(placement_rng.uniform_int(
        0, static_cast<std::int64_t>(topo.node_count()) - 1));
    const bool taken =
        std::find(result.sinks.begin(), result.sinks.end(), candidate) !=
            result.sinks.end() ||
        std::find(result.sources.begin(), result.sources.end(), candidate) !=
            result.sources.end();
    if (!taken) result.sinks.push_back(candidate);
  }

  const net::Rect task_region = config.interest_region.value_or(
      net::Rect{0.0, 0.0, config.field.side_m, config.field.side_m});
  for (net::NodeId s : result.sources) nodes[s]->set_detecting(true);
  for (net::NodeId k : result.sinks) nodes[k]->make_sink(task_region);
  for (auto& n : nodes) n->start();

  // --- failure process ---
  std::vector<char> protected_nodes(topo.node_count(), 0);
  for (net::NodeId s : result.sources) protected_nodes[s] = 1;
  for (net::NodeId k : result.sinks) protected_nodes[k] = 1;
  std::vector<mac::MacBase*> mac_ptrs;
  for (auto& m : macs) mac_ptrs.push_back(m.get());
  FailureProcess failures{sim, mac_ptrs, protected_nodes, config.failures,
                          failure_rng};

  // --- run ---
  sim.run_until(config.duration);

  // --- harvest ---
  result.events_dispatched = sim.events_dispatched();
  const sim::RecyclingArena::Stats pool = sim.arena().stats();
  result.pool_acquires = pool.total_acquires;
  result.pool_slots_created = pool.blocks_created;
  result.pool_slots_live = pool.blocks_live;
  result.pool_bytes_reserved = pool.bytes_reserved;
  double total_energy = 0.0;
  double total_active = 0.0;
  stats::Accumulator per_node_energy;
  result.node_positions = positions;
  for (auto& m : macs) {
    const double j = m->energy_joules(sim.now());
    result.node_energy_joules.push_back(j);
    per_node_energy.add(j);
    total_energy += j;
    total_active += m->active_energy_joules(sim.now());
    const auto& st = m->stats();
    result.frames_sent += st.frames_sent + st.acks_sent;
    result.bytes_sent += st.bytes_sent;
    result.arrivals_corrupted += st.arrivals_corrupted;
    result.drops += st.drops_queue_full + st.drops_retry_exhausted;
  }
  for (auto& n : nodes) {
    const auto& p = n->stats();
    result.protocol.interests_sent += p.interests_sent;
    result.protocol.exploratory_sent += p.exploratory_sent;
    result.protocol.data_sent += p.data_sent;
    result.protocol.icm_sent += p.icm_sent;
    result.protocol.reinforcements_sent += p.reinforcements_sent;
    result.protocol.negatives_sent += p.negatives_sent;
    result.protocol.repairs_attempted += p.repairs_attempted;
    result.protocol.items_dropped_no_gradient += p.items_dropped_no_gradient;
    result.protocol.aggregates_received += p.aggregates_received;
    for (net::NodeId nb : n->data_gradient_neighbors()) {
      result.tree_edges.emplace_back(n->id(), nb);
    }
  }
  result.average_degree = topo.average_degree();
  result.energy_max_node_joules = per_node_energy.max();
  result.energy_mean_node_joules = per_node_energy.mean();
  result.energy_stddev_node_joules = per_node_energy.stddev();
  result.metrics = collector.finalize(total_energy, total_active,
                                      topo.node_count(), result.sinks.size());
  return result;
}

}  // namespace wsn::scenario
