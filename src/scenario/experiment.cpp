#include "scenario/experiment.hpp"

#include <algorithm>
#include <memory>

#include "mac/channel.hpp"
#include "mac/csma_mac.hpp"
#include "mac/tdma_mac.hpp"
#include "net/topology.hpp"
#include "scenario/failure.hpp"
#include "sim/simulator.hpp"
#include "stats/accumulator.hpp"
#include "stats/digest.hpp"
#include "trees/models.hpp"

namespace wsn::scenario {
namespace {

void add_rect(stats::Digest& d, const net::Rect& r) {
  d.add(r.x0);
  d.add(r.y0);
  d.add(r.x1);
  d.add(r.y1);
}

}  // namespace

std::uint64_t config_digest(const ExperimentConfig& config) {
  // Workload-defining fields only: the seed is deliberately excluded (it is
  // a separate trace-header word) and so is the trace spec itself — tracing
  // a run must not change what the run *is*.
  stats::Digest d;
  d.add(config.field.side_m);
  d.add(static_cast<std::uint64_t>(config.field.nodes));
  d.add(config.field.radio_range_m);
  d.add(config.field.carrier_sense_range_m);
  d.add(static_cast<std::uint64_t>(config.algorithm));
  d.add(static_cast<std::uint64_t>(config.mac_type));
  d.add(static_cast<std::uint64_t>(config.num_sources));
  d.add(static_cast<std::uint64_t>(config.num_sinks));
  d.add(static_cast<std::uint64_t>(config.source_placement));
  add_rect(d, config.source_rect);
  add_rect(d, config.sink_rect);
  d.add(static_cast<std::uint64_t>(config.interest_region.has_value()));
  if (config.interest_region.has_value()) add_rect(d, *config.interest_region);
  d.add(static_cast<std::uint64_t>(config.failures.enabled));
  d.add(config.failures.fraction);
  d.add(config.failures.period.as_nanos());
  d.add(static_cast<std::uint64_t>(config.failures.protect_endpoints));
  d.add(config.duration.as_nanos());
  return d.value();
}

RunResult run_experiment(const ExperimentConfig& config) {
  // A workload needs at least one node per endpoint; degenerate configs
  // (e.g. `wsnctl --nodes 0`) return an empty result instead of indexing
  // into empty node tables.
  if (config.field.nodes == 0 ||
      config.field.nodes < config.num_sources + config.num_sinks) {
    return RunResult{};
  }
  sim::Rng master{config.seed};
  sim::Rng field_rng = master.fork(1);
  sim::Rng placement_rng = master.fork(2);
  sim::Rng failure_rng = master.fork(3);

  const auto positions =
      net::generate_connected_field(config.field, field_rng);
  const net::Topology topo{positions, config.field.radio_range_m,
                           config.field.carrier_sense_range_m};

  // Tracing: the config's spec wins; an empty one falls back to the
  // environment knobs. Declared before the simulator so the tracer outlives
  // every emission (including any from queue teardown).
  const trace::TraceSpec trace_spec =
      config.trace.enabled() ? config.trace : trace::spec_from_env();
  std::unique_ptr<trace::Tracer> tracer;
  if (trace_spec.enabled()) {
    tracer = std::make_unique<trace::Tracer>(trace::Tracer::Options{
        .path = trace::resolve_trace_path(trace_spec.path, config.seed),
        .ring_capacity = trace_spec.ring_capacity,
        .seed = config.seed,
        .config_digest = config_digest(config),
    });
  }

  sim::Simulator sim;
  if (tracer != nullptr) sim.set_tracer(tracer.get());
  mac::Channel channel{sim, topo, config.phy.propagation};

  std::vector<std::unique_ptr<mac::MacBase>> macs;
  macs.reserve(topo.node_count());
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    if (config.mac_type == MacType::kCsma) {
      macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, id,
                                                    config.phy, config.energy,
                                                    master.fork(1000 + id)));
    } else {
      macs.push_back(std::make_unique<mac::TdmaMac>(
          sim, channel, id, static_cast<std::uint32_t>(topo.node_count()),
          config.tdma, config.energy));
    }
  }

  stats::MetricsCollector collector;
  std::vector<std::unique_ptr<diffusion::DiffusionNode>> nodes;
  nodes.reserve(topo.node_count());
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    nodes.push_back(core::make_diffusion_node(
        config.algorithm, sim, *macs[id], topo.position(id), config.diffusion,
        master.fork(2000 + id), &collector));
  }

  // --- workload placement ---
  RunResult result;
  if (config.source_placement == SourcePlacement::kCorner) {
    auto inst = trees::make_corner_instance(topo, config.num_sources,
                                            config.source_rect,
                                            config.sink_rect, placement_rng);
    result.sources.assign(inst.sources.begin(), inst.sources.end());
    result.sinks.push_back(inst.sink);
  } else {
    auto inst = trees::make_random_sources_instance(topo, config.num_sources,
                                                    placement_rng);
    result.sources.assign(inst.sources.begin(), inst.sources.end());
    // Even with random sources the first sink uses the paper's corner rect.
    auto sink_inst = trees::make_corner_instance(
        topo, 0, config.source_rect, config.sink_rect, placement_rng);
    net::NodeId sink = sink_inst.sink;
    while (std::find(result.sources.begin(), result.sources.end(), sink) !=
           result.sources.end()) {
      sink = static_cast<net::NodeId>(placement_rng.uniform_int(
          0, static_cast<std::int64_t>(topo.node_count()) - 1));
    }
    result.sinks.push_back(sink);
  }
  // Extra sinks (paper §5.4): uniformly scattered, avoiding duplicates.
  while (result.sinks.size() < config.num_sinks) {
    const auto candidate = static_cast<net::NodeId>(placement_rng.uniform_int(
        0, static_cast<std::int64_t>(topo.node_count()) - 1));
    const bool taken =
        std::find(result.sinks.begin(), result.sinks.end(), candidate) !=
            result.sinks.end() ||
        std::find(result.sources.begin(), result.sources.end(), candidate) !=
            result.sources.end();
    if (!taken) result.sinks.push_back(candidate);
  }

  const net::Rect task_region = config.interest_region.value_or(
      net::Rect{0.0, 0.0, config.field.side_m, config.field.side_m});
  for (net::NodeId s : result.sources) nodes[s]->set_detecting(true);
  for (net::NodeId k : result.sinks) nodes[k]->make_sink(task_region);
  for (auto& n : nodes) n->start();

  // --- failure process ---
  std::vector<char> protected_nodes(topo.node_count(), 0);
  for (net::NodeId s : result.sources) protected_nodes[s] = 1;
  for (net::NodeId k : result.sinks) protected_nodes[k] = 1;
  std::vector<mac::MacBase*> mac_ptrs;
  for (auto& m : macs) mac_ptrs.push_back(m.get());
  FailureProcess failures{sim, mac_ptrs, protected_nodes, config.failures,
                          failure_rng};

  // --- run ---
  sim.run_until(config.duration);

  // --- harvest ---
  result.events_dispatched = sim.events_dispatched();
  const sim::RecyclingArena::Stats pool = sim.arena().stats();
  result.pool_acquires = pool.total_acquires;
  result.pool_slots_created = pool.blocks_created;
  result.pool_slots_live = pool.blocks_live;
  result.pool_bytes_reserved = pool.bytes_reserved;
  double total_energy = 0.0;
  double total_active = 0.0;
  stats::Accumulator per_node_energy;
  result.node_positions = positions;
  for (auto& m : macs) {
    const double j = m->energy_joules(sim.now());
    result.node_energy_joules.push_back(j);
    per_node_energy.add(j);
    total_energy += j;
    total_active += m->active_energy_joules(sim.now());
    const auto& st = m->stats();
    result.frames_sent += st.frames_sent + st.acks_sent;
    result.bytes_sent += st.bytes_sent;
    result.arrivals_corrupted += st.arrivals_corrupted;
    result.drops += st.drops_queue_full + st.drops_retry_exhausted;
  }
  for (auto& n : nodes) {
    const auto& p = n->stats();
    result.protocol.interests_sent += p.interests_sent;
    result.protocol.exploratory_sent += p.exploratory_sent;
    result.protocol.data_sent += p.data_sent;
    result.protocol.icm_sent += p.icm_sent;
    result.protocol.reinforcements_sent += p.reinforcements_sent;
    result.protocol.negatives_sent += p.negatives_sent;
    result.protocol.repairs_attempted += p.repairs_attempted;
    result.protocol.items_dropped_no_gradient += p.items_dropped_no_gradient;
    result.protocol.aggregates_received += p.aggregates_received;
    for (net::NodeId nb : n->data_gradient_neighbors()) {
      result.tree_edges.emplace_back(n->id(), nb);
    }
  }
  if (tracer != nullptr) {
    result.trace_counters = tracer->counters();
    tracer->flush();
  }
  result.average_degree = topo.average_degree();
  result.energy_max_node_joules = per_node_energy.max();
  result.energy_mean_node_joules = per_node_energy.mean();
  result.energy_stddev_node_joules = per_node_energy.stddev();
  result.metrics = collector.finalize(total_energy, total_active,
                                      topo.node_count(), result.sinks.size());
  return result;
}

}  // namespace wsn::scenario
