// Minimal leveled logger with simulation-time prefixes.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace wsn::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global log sink.
///
/// Level comes from the WSN_LOG environment variable
/// (trace|debug|info|warn|error|off); default is warn so that large sweeps
/// stay quiet. Each Simulator is single-threaded, but the parallel
/// replicate engine runs several simulators at once, so the level is
/// atomic and each emit is a single locked stdio call — concurrent lines
/// never interleave mid-line (their relative order is unspecified).
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  /// printf-style logging: `Logger::log(LogLevel::kDebug, now, "mac", "...", ...)`.
  template <typename... Args>
  static void log(LogLevel lvl, Time now, std::string_view component,
                  const char* fmt, Args&&... args) {
    if (!enabled(lvl)) return;
    char msg[512];
    if constexpr (sizeof...(Args) == 0) {
      std::snprintf(msg, sizeof msg, "%s", fmt);
    } else {
      std::snprintf(msg, sizeof msg, fmt, std::forward<Args>(args)...);
    }
    emit(lvl, now, component, msg);
  }

 private:
  static void emit(LogLevel lvl, Time now, std::string_view component,
                   const char* msg);
};

#define WSN_LOG_AT(lvl, now, component, ...)                      \
  do {                                                            \
    if (::wsn::sim::Logger::enabled(lvl)) {                       \
      ::wsn::sim::Logger::log(lvl, now, component, __VA_ARGS__);  \
    }                                                             \
  } while (false)

}  // namespace wsn::sim
