// Minimal leveled logger with simulation-time prefixes.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "sim/time.hpp"

// Marks a function as printf-like so -Wformat diagnoses argument/format
// mismatches at every call site. Indices are 1-based positions of the
// format string and the first variadic argument.
#if defined(__GNUC__) || defined(__clang__)
#define WSN_PRINTF_FORMAT(fmt_idx, args_idx) \
  __attribute__((format(printf, fmt_idx, args_idx)))
#else
#define WSN_PRINTF_FORMAT(fmt_idx, args_idx)
#endif

namespace wsn::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global log sink.
///
/// Level comes from the WSN_LOG environment variable
/// (trace|debug|info|warn|error|off); default is warn so that large sweeps
/// stay quiet. Each Simulator is single-threaded, but the parallel
/// replicate engine runs several simulators at once, so the level is
/// atomic and each emit is a single locked stdio call — concurrent lines
/// never interleave mid-line (their relative order is unspecified).
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  /// printf-style logging: `Logger::log(LogLevel::kDebug, now, "mac", "...",
  /// ...)`. The format attribute makes -Wformat check every call site.
  /// Messages beyond the 512-byte line buffer are truncated with a visible
  /// `…` marker instead of being silently cut.
  static void log(LogLevel lvl, Time now, std::string_view component,
                  const char* fmt, ...) WSN_PRINTF_FORMAT(4, 5);

 private:
  static void emit(LogLevel lvl, Time now, std::string_view component,
                   const char* msg);
};

#define WSN_LOG_AT(lvl, now, component, ...)                      \
  do {                                                            \
    if (::wsn::sim::Logger::enabled(lvl)) {                       \
      ::wsn::sim::Logger::log(lvl, now, component, __VA_ARGS__);  \
    }                                                             \
  } while (false)

}  // namespace wsn::sim
