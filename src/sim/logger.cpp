#include "sim/logger.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace wsn::sim {
namespace {

LogLevel parse_level(const char* s) {
  if (s == nullptr) return LogLevel::kWarn;
  if (std::strcmp(s, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

// Atomic so worker threads of the parallel replicate engine can check the
// level while a test flips it; plain relaxed loads keep the fast path free.
std::atomic<LogLevel> g_level{parse_level(std::getenv("WSN_LOG"))};

}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }
void Logger::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void Logger::log(LogLevel lvl, Time now, std::string_view component,
                 const char* fmt, ...) {
  if (!enabled(lvl)) return;
  char msg[512];
  std::va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(msg, sizeof msg, fmt, args);
  va_end(args);
  if (n >= static_cast<int>(sizeof msg)) {
    // Truncated: make it visible by ending the line with a "…" (UTF-8,
    // 3 bytes) instead of cutting mid-word without a trace.
    constexpr char kMark[] = "\xe2\x80\xa6";  // 4 bytes with the NUL
    std::memcpy(msg + sizeof msg - sizeof kMark, kMark, sizeof kMark);
  }
  emit(lvl, now, component, msg);
}

void Logger::emit(LogLevel lvl, Time now, std::string_view component,
                  const char* msg) {
  // One fprintf call per line: stdio locks the stream internally, so lines
  // from concurrent replicate workers never interleave mid-line.
  std::fprintf(stderr, "[%11.6f] %s %-9.*s %s\n", now.as_seconds(),
               level_name(lvl), static_cast<int>(component.size()),
               component.data(), msg);
}

}  // namespace wsn::sim
