#include "sim/logger.hpp"

#include <cstdlib>
#include <cstring>

namespace wsn::sim {
namespace {

LogLevel parse_level(const char* s) {
  if (s == nullptr) return LogLevel::kWarn;
  if (std::strcmp(s, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

LogLevel g_level = parse_level(std::getenv("WSN_LOG"));

}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::set_level(LogLevel lvl) { g_level = lvl; }

void Logger::emit(LogLevel lvl, Time now, std::string_view component,
                  const char* msg) {
  std::fprintf(stderr, "[%11.6f] %s %-9.*s %s\n", now.as_seconds(),
               level_name(lvl), static_cast<int>(component.size()),
               component.data(), msg);
}

}  // namespace wsn::sim
