// Fixed-slot ring buffer FIFO: the MAC outgoing-queue replacement for
// std::deque, whose chunked storage allocates/frees a page every ~dozen
// pushes even at steady state. RingQueue keeps a power-of-two slot array
// that only ever grows; pop_front resets the slot to T{} so held
// resources (a frame's shared payload) are released immediately, but the
// storage itself is reused forever.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace wsn::sim {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  [[nodiscard]] T& front() {
    assert(count_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(count_ > 0);
    return slots_[head_];
  }

  void push_back(T v) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(v);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    slots_[head_] = T{};  // release held resources, keep the slot
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
  }

  /// Drops all elements (releasing their resources); keeps the slots.
  void clear() {
    while (count_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> bigger(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;  // size is always a power of two (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace wsn::sim
