// Pending-event priority queue for the discrete-event engine.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace wsn::sim {

/// Opaque handle to a scheduled event; used to cancel it.
///
/// A handle packs (slot, generation): slots are recycled but every reuse
/// bumps the generation, so a stale handle never aliases a newer event and
/// is a safe no-op to cancel.
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool valid() const { return raw_ != 0; }
  constexpr bool operator==(const EventHandle&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventHandle(std::uint64_t raw) : raw_{raw} {}
  std::uint64_t raw_ = 0;  ///< (generation << 32) | (slot + 1); 0 = invalid
};

/// Min-heap of (time, insertion order) → callback.
///
/// Ties at equal time are dispatched in insertion order, which makes
/// multi-node protocol interleavings deterministic.
///
/// Hot-path cost contract: schedule, cancel and pop perform **no heap
/// allocation and no hashing** in steady state. Callbacks live inline
/// (InlineFn) in a slab of recycled slots; the binary heap holds only
/// trivially-copyable (time, seq, slot, generation) entries on a flat
/// vector. Cancellation destroys the callback eagerly (releasing captured
/// resources immediately) and bumps the slot generation; the heap entry is
/// dropped lazily when it surfaces, detected by generation mismatch.
class EventQueue {
 public:
  using Callback = InlineFn;

  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle schedule(Time at, Callback fn);

  /// Cancels a pending event. Safe on already-fired or invalid handles.
  /// Returns true iff the event was pending and is now cancelled.
  bool cancel(EventHandle h);

  /// True iff the handle refers to a still-pending event.
  [[nodiscard]] bool pending(EventHandle h) const {
    const std::uint32_t index = slot_of(h);
    return index != kNoSlot && slots_[index].gen == gen_of(h);
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event; Time::max() when empty.
  [[nodiscard]] Time next_time() const;

  /// Pops and returns the earliest pending event. Precondition: !empty().
  struct Fired {
    Time at;
    Callback fn;
  };
  Fired pop();

  /// Drops every pending event (destroying callbacks) and resets the pop
  /// watermark, but keeps slab and heap capacity so a reused queue stays
  /// allocation-free. All outstanding handles become stale.
  void clear();

 private:
  /// Heap entry. The callback is NOT here — it stays put in its slot, so
  /// heap sift operations move only these 24 trivially-copyable bytes.
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Slab cell: the inline callback plus the generation stamped into
  /// handles and heap entries referring to its current occupant.
  struct Slot {
    InlineFn fn;
    std::uint32_t gen = 1;
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFFu;

  /// Slot index of a handle, or kNoSlot when invalid / out of range.
  [[nodiscard]] std::uint32_t slot_of(EventHandle h) const {
    const auto index = static_cast<std::uint32_t>(h.raw_ & 0xFFFF'FFFFu) - 1u;
    return h.valid() && index < slots_.size() ? index : kNoSlot;
  }
  [[nodiscard]] static std::uint32_t gen_of(EventHandle h) {
    return static_cast<std::uint32_t>(h.raw_ >> 32);
  }

  void drop_stale_top() const;
  void release_slot(std::uint32_t index);

  mutable std::vector<Entry> heap_;  ///< binary heap via std::push/pop_heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< recycled slot indices
  std::size_t live_ = 0;             ///< pending (scheduled, not yet
                                     ///< fired/cancelled) events
  std::uint64_t next_seq_ = 1;
  Time last_popped_ = Time::zero();  ///< audit: pop times never decrease
};

}  // namespace wsn::sim
