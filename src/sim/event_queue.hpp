// Pending-event priority queue for the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace wsn::sim {

/// Opaque handle to a scheduled event; used to cancel it.
///
/// Handles are never reused within one queue, so a stale handle is a safe
/// no-op to cancel.
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  constexpr bool operator==(const EventHandle&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventHandle(std::uint64_t seq) : seq_{seq} {}
  std::uint64_t seq_ = 0;
};

/// Min-heap of (time, insertion order) → callback.
///
/// Ties at equal time are dispatched in insertion order, which makes
/// multi-node protocol interleavings deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle schedule(Time at, Callback fn);

  /// Cancels a pending event. Safe on already-fired or invalid handles.
  /// Returns true iff the event was pending and is now cancelled.
  bool cancel(EventHandle h);

  /// True iff the handle refers to a still-pending event.
  [[nodiscard]] bool pending(EventHandle h) const {
    return h.valid() && pending_.contains(h.seq_);
  }

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event; Time::max() when empty.
  [[nodiscard]] Time next_time() const;

  /// Pops and returns the earliest pending event. Precondition: !empty().
  struct Fired {
    Time at;
    Callback fn;
  };
  Fired pop();

  void clear();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_top() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_seq_ = 1;
  Time last_popped_ = Time::zero();  ///< audit: pop times never decrease
};

}  // namespace wsn::sim
