// Sorted small-vector flat containers for per-node protocol state.
//
// `FlatMap`/`FlatSet` store their entries in one sorted contiguous vector:
// iteration is cache-linear and deterministically key-ordered (a drop-in
// behavioural match for `std::map`/`std::set`, and a determinism *upgrade*
// over the unordered containers they replace), lookups are binary
// searches, and — the point — erase/clear keep the vector's capacity, so
// a cache that cycles through entries (gradients, duplicate-suppression
// records) stops allocating once it has seen its working-set high-water
// mark. The trade-off vs node-based maps: references and iterators are
// invalidated by any insert or erase, so callers must not hold them across
// mutations. Sized for protocol fan-outs (radio degree ~10–45 at the
// paper's densities); not a general-purpose map.
//
// `InlineVec` is a fixed-capacity inline vector (no heap at all) for the
// small capped lists inside records, e.g. an exploratory record's tracked
// senders.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wsn::sim {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }  // capacity retained
  void reserve(std::size_t n) { entries_.reserve(n); }

  [[nodiscard]] iterator find(const Key& key) {
    auto it = lower_bound(key);
    return (it != entries_.end() && !comp_(key, it->first)) ? it
                                                            : entries_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return (it != entries_.end() && !comp_(key, it->first)) ? it
                                                            : entries_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != entries_.end();
  }

  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || comp_(key, it->first)) {
      it = entries_.emplace(it, key, Value{});
    }
    return it->second;
  }

  Value& at(const Key& key) {
    auto it = find(key);
    if (it == entries_.end()) throw std::out_of_range{"FlatMap::at"};
    return it->second;
  }
  const Value& at(const Key& key) const {
    auto it = find(key);
    if (it == entries_.end()) throw std::out_of_range{"FlatMap::at"};
    return it->second;
  }

  /// Inserts {key, Value{args...}} if absent; returns {iterator, inserted}.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    auto it = lower_bound(key);
    if (it != entries_.end() && !comp_(key, it->first)) return {it, false};
    it = entries_.emplace(it, std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  /// std::map-style emplace from a (key, value) pair; first insert wins.
  template <typename K, typename V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && !comp_(key, it->first)) return {it, false};
    it = entries_.emplace(it, std::forward<K>(key), std::forward<V>(value));
    return {it, true};
  }

  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return entries_.erase(it); }

  /// Member counterpart of std::erase_if; returns the number removed.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    const auto first =
        std::remove_if(entries_.begin(), entries_.end(), std::move(pred));
    const auto removed = static_cast<std::size_t>(entries_.end() - first);
    entries_.erase(first, entries_.end());
    return removed;
  }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [this](const value_type& e, const Key& k) { return comp_(e.first, k); });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [this](const value_type& e, const Key& k) { return comp_(e.first, k); });
  }

  std::vector<value_type> entries_;
  [[no_unique_address]] Compare comp_;
};

template <typename Key, typename Compare = std::less<Key>>
class FlatSet {
 public:
  using const_iterator = typename std::vector<Key>::const_iterator;

  [[nodiscard]] const_iterator begin() const { return keys_.begin(); }
  [[nodiscard]] const_iterator end() const { return keys_.end(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  void clear() { keys_.clear(); }  // capacity retained
  void reserve(std::size_t n) { keys_.reserve(n); }

  [[nodiscard]] bool contains(const Key& key) const {
    auto it = lower_bound(key);
    return it != keys_.end() && !comp_(key, *it);
  }

  /// Returns {position, inserted}; duplicates are ignored.
  std::pair<const_iterator, bool> insert(const Key& key) {
    auto it = lower_bound(key);
    if (it != keys_.end() && !comp_(key, *it)) return {it, false};
    it = keys_.insert(it, key);
    return {it, true};
  }

  std::size_t erase(const Key& key) {
    auto it = lower_bound(key);
    if (it == keys_.end() || comp_(key, *it)) return 0;
    keys_.erase(it);
    return 1;
  }

 private:
  [[nodiscard]] typename std::vector<Key>::iterator lower_bound(
      const Key& key) {
    return std::lower_bound(keys_.begin(), keys_.end(), key, comp_);
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(keys_.begin(), keys_.end(), key, comp_);
  }

  std::vector<Key> keys_;
  [[no_unique_address]] Compare comp_;
};

/// Fixed-capacity inline vector: N slots in the object itself, no heap.
/// push_back beyond capacity is a caller bug (asserted); callers enforce
/// their own cap (e.g. kMaxSendersTracked) before pushing.
template <typename T, std::size_t N>
class InlineVec {
 public:
  using iterator = T*;
  using const_iterator = const T*;

  [[nodiscard]] iterator begin() { return items_; }
  [[nodiscard]] iterator end() { return items_ + size_; }
  [[nodiscard]] const_iterator begin() const { return items_; }
  [[nodiscard]] const_iterator end() const { return items_ + size_; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() { return N; }
  void clear() { size_ = 0; }

  T& operator[](std::size_t i) { return items_[i]; }
  const T& operator[](std::size_t i) const { return items_[i]; }

  void push_back(const T& v) {
    assert(size_ < N);
    items_[size_++] = v;
  }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    assert(size_ < N);
    items_[size_++] = T{std::forward<Args>(args)...};
  }

 private:
  T items_[N] = {};
  std::size_t size_ = 0;
};

}  // namespace wsn::sim
