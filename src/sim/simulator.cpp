#include "sim/simulator.hpp"

namespace wsn::sim {

std::uint64_t Simulator::run_until(Time until) {
  stopped_ = false;
  std::uint64_t dispatched_this_run = 0;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() > until) break;
    auto fired = queue_.pop();
    now_ = fired.at;
    fired.fn();
    ++dispatched_;
    ++dispatched_this_run;
  }
  if (until != Time::max() && now_ < until) now_ = until;
  return dispatched_this_run;
}

}  // namespace wsn::sim
