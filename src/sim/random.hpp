// Deterministic random-number streams for simulations.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.hpp"

namespace wsn::sim {

/// xoshiro256** 1.0 (Blackman & Vigna) seeded through splitmix64.
///
/// Small, fast, and — unlike std::mt19937_64 seeded via seed_seq — gives the
/// same stream on every platform, which keeps experiments reproducible.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }
  /// Uniform Time in [Time::zero(), bound).
  Time jitter(Time bound);

  /// Derives an independent child stream; streams indexed differently are
  /// decorrelated. Used to give each node / process its own stream.
  [[nodiscard]] Rng fork(std::uint64_t stream_index) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in random order. k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4] = {};
  std::uint64_t seed_ = 0;
};

}  // namespace wsn::sim
