// Runtime invariant auditing, compiled in by the WSN_AUDIT build option.
#pragma once

#include <cstdint>

namespace wsn::sim::audit {

/// Number of invariant checks evaluated since process start (summed over
/// all replicate workers; the counters are atomic). Stays 0 in non-audit
/// builds; tests use it to prove the audit layer is live.
[[nodiscard]] std::uint64_t checks_performed();

/// Number of violations observed. Only ever non-zero after
/// `set_abort_on_violation(false)` — the default response is to print the
/// failed invariant and abort, so a violating audit build cannot silently
/// produce numbers.
[[nodiscard]] std::uint64_t violations();

/// Tests that deliberately violate an invariant switch to counting mode;
/// production audit runs keep the default (abort).
void set_abort_on_violation(bool abort_on_violation);

/// Resets the violation counter (counting mode tests only).
void reset_violations();

/// One process-wide hook invoked on every violation, after the diagnostic
/// is printed and before the abort decision. The trace subsystem installs
/// its flight-recorder dump here; nullptr clears. The hook must be safe to
/// call from any replicate worker thread.
void set_violation_hook(void (*hook)());

namespace detail {
void count_check();
void fail(const char* file, int line, const char* expr, const char* msg);
}  // namespace detail

}  // namespace wsn::sim::audit

// WSN_AUDIT_CHECK(cond, msg): in audit builds, evaluates `cond` and reports
// a violation (abort by default) when false; compiles to nothing otherwise,
// so `cond` must be side-effect free. WSN_AUDIT_ONLY(...) splices
// audit-build-only statements (bookkeeping for checks) into normal code.
#if defined(WSN_AUDIT)
#define WSN_AUDIT_ENABLED 1
#define WSN_AUDIT_CHECK(cond, msg)                                      \
  do {                                                                  \
    ::wsn::sim::audit::detail::count_check();                           \
    if (!(cond)) {                                                      \
      ::wsn::sim::audit::detail::fail(__FILE__, __LINE__, #cond, msg);  \
    }                                                                   \
  } while (false)
#define WSN_AUDIT_ONLY(...) __VA_ARGS__
#else
#define WSN_AUDIT_ENABLED 0
#define WSN_AUDIT_CHECK(cond, msg) ((void)0)
#define WSN_AUDIT_ONLY(...)
#endif
