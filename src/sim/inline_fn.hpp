// Move-only, allocation-free callable for engine-scheduled events.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wsn::sim {

/// Small-buffer `void()` callable with **no heap fallback**: a closure
/// larger than the inline buffer is a compile error, not a silent
/// allocation. This is the engine's per-event cost contract — every
/// schedule stores its callback inline in the EventQueue slab, so the hot
/// path (schedule/cancel/pop) performs zero allocations in steady state.
///
/// Requirements on the wrapped callable F:
///   * sizeof(F) <= kInlineBytes (keep capture lists small: `this` plus a
///     couple of values; a shared_ptr capture costs 16 bytes),
///   * alignof(F) <= kAlign,
///   * nothrow move constructible (moves happen inside the queue's slab).
///
/// Copyable callables (e.g. std::function, for test convenience) are
/// accepted and copied in; InlineFn itself is move-only.
class InlineFn {
 public:
  /// Inline storage size. Sized for the engine's largest closure family
  /// (`[this, shared_ptr, scalar]` ≈ 32 bytes) with headroom for a full
  /// std::function (32 bytes on libstdc++) so tests can schedule one.
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kAlign = 16;

  InlineFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): callback sink by design
  InlineFn(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "engine closure exceeds InlineFn inline storage; shrink "
                  "the capture list (or raise kInlineBytes deliberately)");
    static_assert(alignof(Fn) <= kAlign,
                  "engine closure over-aligned for InlineFn storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "engine closures must be nothrow move constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::kOps;
  }

  InlineFn(InlineFn&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroys the held callable (releasing captured resources), leaving
  /// the InlineFn empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  struct OpsFor {
    static void invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void destroy(void* self) { static_cast<Fn*>(self)->~Fn(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy};
  };

  alignas(kAlign) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace wsn::sim
