// Restartable one-shot timer bound to a Simulator.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace wsn::sim {

/// One-shot timer with restart/cancel, the building block for the protocol
/// timers in this codebase (aggregation delay T_a, reinforcement wait T_p,
/// truncation window T_n, gradient expiry).
///
/// The callback is set once; `arm` (re)schedules it. Arming an armed timer
/// cancels the previous expiry first. The owner must outlive the simulator
/// run or call `cancel()` in its destructor path (Timer cancels itself on
/// destruction).
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_expire)
      : sim_{&sim}, on_expire_{std::move(on_expire)} {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  /// Schedules expiry `delay` from now, replacing any pending expiry.
  void arm(Time delay) {
    cancel();
    handle_ = sim_->schedule_in(delay, [this] {
      handle_ = EventHandle{};
      on_expire_();
    });
  }

  /// Schedules expiry only if not already armed.
  void arm_if_idle(Time delay) {
    if (!armed()) arm(delay);
  }

  void cancel() {
    if (handle_.valid()) {
      sim_->cancel(handle_);
      handle_ = EventHandle{};
    }
  }

  [[nodiscard]] bool armed() const {
    return handle_.valid() && sim_->pending(handle_);
  }

 private:
  Simulator* sim_;
  std::function<void()> on_expire_;
  EventHandle handle_;
};

}  // namespace wsn::sim
