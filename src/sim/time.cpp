#include "sim/time.hpp"

#include <cstdio>

namespace wsn::sim {

std::string Time::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6fs", as_seconds());
  return buf;
}

}  // namespace wsn::sim
