#include "sim/audit.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wsn::sim::audit {
namespace {

// Relaxed atomics: the counters are plain tallies with no ordering
// requirements, and the check hook sits on simulation hot paths that the
// parallel replicate engine runs from several workers at once.
std::atomic<std::uint64_t> g_checks{0};
std::atomic<std::uint64_t> g_violations{0};
std::atomic<bool> g_abort{true};
std::atomic<void (*)()> g_violation_hook{nullptr};

}  // namespace

std::uint64_t checks_performed() {
  return g_checks.load(std::memory_order_relaxed);
}
std::uint64_t violations() {
  return g_violations.load(std::memory_order_relaxed);
}
void set_abort_on_violation(bool abort_on_violation) {
  g_abort.store(abort_on_violation, std::memory_order_relaxed);
}
void reset_violations() { g_violations.store(0, std::memory_order_relaxed); }
void set_violation_hook(void (*hook)()) {
  g_violation_hook.store(hook, std::memory_order_relaxed);
}

namespace detail {

void count_check() { g_checks.fetch_add(1, std::memory_order_relaxed); }

void fail(const char* file, int line, const char* expr, const char* msg) {
  std::fprintf(stderr, "[wsn-audit] %s:%d: invariant violated: %s (%s)\n",
               file, line, expr, msg);
  if (auto* hook = g_violation_hook.load(std::memory_order_relaxed);
      hook != nullptr) {
    hook();  // e.g. the trace subsystem's flight-recorder dump
  }
  if (g_abort.load(std::memory_order_relaxed)) std::abort();
  g_violations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace wsn::sim::audit
