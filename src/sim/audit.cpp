#include "sim/audit.hpp"

#include <cstdio>
#include <cstdlib>

namespace wsn::sim::audit {
namespace {

std::uint64_t g_checks = 0;
std::uint64_t g_violations = 0;
bool g_abort = true;

}  // namespace

std::uint64_t checks_performed() { return g_checks; }
std::uint64_t violations() { return g_violations; }
void set_abort_on_violation(bool abort_on_violation) {
  g_abort = abort_on_violation;
}
void reset_violations() { g_violations = 0; }

namespace detail {

void count_check() { ++g_checks; }

void fail(const char* file, int line, const char* expr, const char* msg) {
  std::fprintf(stderr, "[wsn-audit] %s:%d: invariant violated: %s (%s)\n",
               file, line, expr, msg);
  if (g_abort) std::abort();
  ++g_violations;
}

}  // namespace detail
}  // namespace wsn::sim::audit
