#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/audit.hpp"

namespace wsn::sim {

EventHandle EventQueue::schedule(Time at, Callback fn) {
  std::uint32_t index;
  if (free_.empty()) {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    index = free_.back();
    free_.pop_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  heap_.push_back(Entry{at, next_seq_++, index, slot.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return EventHandle{(static_cast<std::uint64_t>(slot.gen) << 32) |
                     (static_cast<std::uint64_t>(index) + 1u)};
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  ++slot.gen;  // stales every handle and heap entry for the old occupant
  free_.push_back(index);
  --live_;
}

bool EventQueue::cancel(EventHandle h) {
  const std::uint32_t index = slot_of(h);
  if (index == kNoSlot || slots_[index].gen != gen_of(h)) return false;
  // Lazy heap deletion: the entry stays until it surfaces at the top, where
  // the generation mismatch identifies it as stale.
  release_slot(index);
  return true;
}

void EventQueue::drop_stale_top() const {
  while (!heap_.empty() &&
         slots_[heap_.front().slot].gen != heap_.front().gen) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  drop_stale_top();
  return heap_.empty() ? Time::max() : heap_.front().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale_top();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.front();
  Fired fired{top.at, std::move(slots_[top.slot].fn)};
  release_slot(top.slot);
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  WSN_AUDIT_CHECK(fired.at >= last_popped_,
                  "event queue popped a time earlier than a previous pop");
  last_popped_ = fired.at;
  return fired;
}

void EventQueue::clear() {
  heap_.clear();
  free_.clear();
  // Every slot is bumped (not just live ones) so ALL outstanding handles —
  // including ones already freed — stay stale against future reuse.
  for (std::uint32_t index = 0;
       index < static_cast<std::uint32_t>(slots_.size()); ++index) {
    Slot& slot = slots_[index];
    slot.fn.reset();
    ++slot.gen;
    free_.push_back(index);
  }
  live_ = 0;
  last_popped_ = Time::zero();
}

}  // namespace wsn::sim
