#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

#include "sim/audit.hpp"

namespace wsn::sim {

EventHandle EventQueue::schedule(Time at, Callback fn) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(fn)});
  pending_.insert(seq);
  return EventHandle{seq};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid() || pending_.erase(h.seq_) == 0) return false;
  // Lazy deletion: remember the sequence number and skip it on pop.
  cancelled_.insert(h.seq_);
  return true;
}

void EventQueue::drop_cancelled_top() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled_top();
  return heap_.empty() ? Time::max() : heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_top();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  // priority_queue::top() is const&; the Entry is about to be discarded, so
  // moving the callback out is safe.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.at, std::move(top.fn)};
  pending_.erase(top.seq);
  heap_.pop();
  WSN_AUDIT_CHECK(fired.at >= last_popped_,
                  "event queue popped a time earlier than a previous pop");
  last_popped_ = fired.at;
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  cancelled_.clear();
  pending_.clear();
  last_popped_ = Time::zero();
}

}  // namespace wsn::sim
