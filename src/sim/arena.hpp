// Size-bucketed recycling arena: steady-state allocation-free heap for the
// protocol hot path.
//
// `RecyclingArena` hands out fixed-size blocks and keeps every freed block
// on an intrusive per-size free list (the freed block's own memory stores
// the next pointer), so after warm-up an acquire/release cycle never
// touches the global heap. `ArenaAllocator<T>` adapts it to the standard
// allocator interface so `std::allocate_shared` places a message (or
// transmission) *and* its shared_ptr control block in one recycled slot:
// `MessagePtr` semantics — const sharing across broadcast receivers,
// lifetime extension by MAC queues — are completely unchanged.
//
// Ownership and lifetime: one arena per `Simulator`, declared before the
// event queue so it is destroyed after every scheduled closure (closures
// capture pooled shared_ptrs). Holders of pooled pointers (MACs, nodes,
// benches) must be destroyed before their Simulator — which the stack
// order in run_experiment / the test rigs already guarantees. The arena is
// single-threaded by construction: the parallel replicate engine gives
// each replicate its own Simulator, hence its own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace wsn::sim {

class RecyclingArena {
 public:
  RecyclingArena() = default;
  RecyclingArena(const RecyclingArena&) = delete;
  RecyclingArena& operator=(const RecyclingArena&) = delete;

  ~RecyclingArena() {
    for (Bucket& b : buckets_) {
      FreeBlock* p = b.head;
      while (p != nullptr) {
        FreeBlock* next = p->next;
        ::operator delete(p);
        p = next;
      }
    }
  }

  /// Hands out a block of at least `bytes`; recycles a freed block of the
  /// same size class when one exists, otherwise allocates a fresh one.
  void* allocate(std::size_t bytes) {
    const std::size_t sz = size_class(bytes);
    ++total_acquires_;
    Bucket& b = bucket_for(sz);
    if (b.head != nullptr) {
      FreeBlock* p = b.head;
      b.head = p->next;
      --free_blocks_;
      return p;
    }
    ++blocks_created_;
    bytes_reserved_ += sz;
    return ::operator new(sz);
  }

  /// Returns a block to its size-class free list; never releases memory to
  /// the global heap before the arena itself dies.
  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t sz = size_class(bytes);
    Bucket& b = bucket_for(sz);
    auto* fb = static_cast<FreeBlock*>(p);
    fb->next = b.head;
    b.head = fb;
    ++free_blocks_;
  }

  /// Pool occupancy counters for benches and audits.
  struct Stats {
    std::uint64_t total_acquires = 0;  ///< allocate() calls, recycled or not
    std::uint64_t blocks_created = 0;  ///< distinct slots from the heap
    std::uint64_t blocks_free = 0;     ///< slots currently on free lists
    std::uint64_t blocks_live = 0;     ///< slots currently checked out
    std::uint64_t bytes_reserved = 0;  ///< heap bytes held by the arena
  };
  [[nodiscard]] Stats stats() const {
    return Stats{total_acquires_, blocks_created_, free_blocks_,
                 blocks_created_ - free_blocks_, bytes_reserved_};
  }

  /// Builds a pooled object: object and control block share one recycled
  /// slot, and releasing the last reference returns the slot to the arena.
  template <typename T, typename... Args>
  [[nodiscard]] std::shared_ptr<T> make(Args&&... args);

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  /// Rounds a request up to a 16-byte size class so near-identical shapes
  /// (control blocks of sibling message types, vector growth steps) share
  /// buckets. Every class fits a FreeBlock and is max_align-compatible
  /// (blocks come from plain ::operator new).
  [[nodiscard]] static std::size_t size_class(std::size_t bytes) {
    const std::size_t floor = sizeof(FreeBlock) > 16 ? sizeof(FreeBlock) : 16;
    if (bytes < floor) bytes = floor;
    return (bytes + 15) & ~std::size_t{15};
  }

  struct Bucket {
    std::size_t size = 0;
    FreeBlock* head = nullptr;
  };

  /// Linear scan: a run uses ~a dozen distinct size classes, and the hot
  /// ones land at the front of the vector after warm-up.
  Bucket& bucket_for(std::size_t sz) {
    for (Bucket& b : buckets_) {
      if (b.size == sz) return b;
    }
    buckets_.push_back(Bucket{sz, nullptr});
    return buckets_.back();
  }

  std::vector<Bucket> buckets_;
  std::uint64_t total_acquires_ = 0;
  std::uint64_t blocks_created_ = 0;
  std::uint64_t free_blocks_ = 0;
  std::uint64_t bytes_reserved_ = 0;
};

/// Standard-allocator adapter over a RecyclingArena. With a null arena it
/// degrades to the global heap, so default-constructed containers (tests,
/// tools) stay usable; protocol code always passes the simulator's arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() = default;
  explicit ArenaAllocator(RecyclingArena* arena) : arena_{arena} {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_{other.arena()} {}

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ == nullptr) return static_cast<T*>(::operator new(bytes));
    return static_cast<T*>(arena_->allocate(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(p);
      return;
    }
    arena_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] RecyclingArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  RecyclingArena* arena_ = nullptr;
};

template <typename T, typename... Args>
std::shared_ptr<T> RecyclingArena::make(Args&&... args) {
  return std::allocate_shared<T>(ArenaAllocator<T>{this},
                                 std::forward<Args>(args)...);
}

}  // namespace wsn::sim
