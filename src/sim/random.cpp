#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace wsn::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo (Lemire-style rejection).
  const std::uint64_t limit = -range % range;  // 2^64 mod range
  std::uint64_t r;
  do {
    r = next();
  } while (r < limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Time Rng::jitter(Time bound) {
  if (bound <= Time::zero()) return Time::zero();
  return Time::nanos(uniform_int(0, bound.as_nanos() - 1));
}

Rng Rng::fork(std::uint64_t stream_index) const {
  // Mix the parent's seed with the stream index through splitmix64 so that
  // neighbouring indices yield unrelated streams.
  std::uint64_t x = seed_ ^ (0x632be59bd9b4e019ULL * (stream_index + 1));
  const std::uint64_t child_seed = splitmix64(x);
  return Rng{child_seed};
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace wsn::sim
