// Discrete-event simulation driver.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace wsn::trace {
class Tracer;
}

namespace wsn::sim {

/// Single-threaded discrete-event simulator.
///
/// Owns the virtual clock and the pending-event queue. Protocol code
/// schedules callbacks with `schedule_in`/`schedule_at` and reads the clock
/// with `now()`. One Simulator instance corresponds to one experiment run.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` after a relative delay (clamped to be non-negative).
  EventHandle schedule_in(Time delay, EventQueue::Callback fn) {
    if (delay < Time::zero()) delay = Time::zero();
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time (must not be in the past).
  EventHandle schedule_at(Time at, EventQueue::Callback fn) {
    if (at < now_) at = now_;
    return queue_.schedule(at, std::move(fn));
  }

  bool cancel(EventHandle h) { return queue_.cancel(h); }
  [[nodiscard]] bool pending(EventHandle h) const { return queue_.pending(h); }

  /// Runs until the queue drains or `until` is reached, whichever first.
  /// The clock ends at min(until, last event time). Returns the number of
  /// events dispatched.
  std::uint64_t run_until(Time until);

  /// Runs until the queue drains.
  std::uint64_t run() { return run_until(Time::max()); }

  /// Requests that the run loop stop after the current event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_dispatched() const {
    return dispatched_;
  }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  /// The run's message/transmission pool. Everything with this simulator's
  /// lifetime (messages, transmissions, their payload buffers) allocates
  /// here so a steady-state protocol cycle never touches the global heap.
  [[nodiscard]] RecyclingArena& arena() { return arena_; }

  /// Structured event tracer, or nullptr (the default: tracing off). The
  /// tracer is owned by the caller and must outlive the simulator. All
  /// emission goes through WSN_TRACE_EMIT (trace/trace.hpp), which reduces
  /// to one load + branch on this pointer when tracing is off.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  // lint:trace-ok — the accessor WSN_TRACE_EMIT itself reads
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }

 private:
  // Declared before the event queue: pending closures capture pooled
  // shared_ptrs, so the arena must outlive the queue's destructor.
  RecyclingArena arena_;
  EventQueue queue_;
  Time now_ = Time::zero();
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace wsn::sim
