// Simulation time: integer nanoseconds for exact, deterministic ordering.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace wsn::sim {

/// A point in simulated time, counted in nanoseconds from simulation start.
///
/// Integer ticks (rather than floating-point seconds) make event ordering
/// exact and runs bit-reproducible across platforms.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  static constexpr Time nanos(std::int64_t n) { return Time{n}; }
  static constexpr Time micros(std::int64_t u) { return Time{u * 1'000}; }
  static constexpr Time millis(std::int64_t m) { return Time{m * 1'000'000}; }
  static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t as_nanos() const { return ns_; }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time other) const { return Time{ns_ + other.ns_}; }
  constexpr Time operator-(Time other) const { return Time{ns_ - other.ns_}; }
  constexpr Time& operator+=(Time other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr Time operator*(std::int64_t k) const { return Time{ns_ * k}; }

  /// Scale by a real factor (used for jitter: `delay * u` with u in [0,1)).
  constexpr Time scaled(double f) const {
    return Time{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace wsn::sim
