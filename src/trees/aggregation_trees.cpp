#include "trees/aggregation_trees.hpp"

#include <cassert>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>

#include "sim/audit.hpp"

namespace wsn::trees {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

#if WSN_AUDIT_ENABLED
/// Audit-build check: the constructed tree is acyclic (union-find over its
/// edges) and, when marked feasible, connects every source to the sink.
void audit_tree(std::size_t n, Vertex sink, std::span<const Vertex> sources,
                const Tree& tree) {
  std::vector<Vertex> parent(n);
  std::iota(parent.begin(), parent.end(), Vertex{0});
  auto find = [&parent](Vertex v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];  // path halving
      v = parent[v];
    }
    return v;
  };
  for (const auto& [u, v] : tree.edges) {
    const Vertex ru = find(u);
    const Vertex rv = find(v);
    WSN_AUDIT_CHECK(ru != rv, "aggregation tree contains a cycle");
    parent[ru] = rv;
  }
  if (tree.feasible) {
    for (Vertex s : sources) {
      WSN_AUDIT_CHECK(find(s) == find(sink),
                      "feasible tree does not span a source");
    }
  }
}
#define WSN_TREE_AUDIT(n, sink, sources, tree) \
  audit_tree(n, sink, sources, tree)
#else
#define WSN_TREE_AUDIT(n, sink, sources, tree) ((void)0)
#endif

/// Walks the parent chain from `from` down to a vertex with distance 0,
/// adding each edge to the tree. Returns the path vertices.
std::vector<Vertex> add_parent_path(Tree& tree, const ShortestPaths& sp,
                                    Vertex from) {
  std::vector<Vertex> path;
  Vertex v = from;
  path.push_back(v);
  while (sp.parent[v] != kNoVertex) {
    const Vertex p = sp.parent[v];
    tree.add_edge(v, p, sp.dist[v] - sp.dist[p]);
    v = p;
    path.push_back(v);
  }
  return path;
}

}  // namespace

Tree shortest_path_tree(const Graph& g, Vertex sink,
                        std::span<const Vertex> sources) {
  Tree tree;
  const ShortestPaths sp = dijkstra(g, sink);
  for (Vertex s : sources) {
    if (sp.dist[s] == kInf) {
      tree.feasible = false;
      continue;
    }
    add_parent_path(tree, sp, s);
  }
  WSN_TREE_AUDIT(g.vertex_count(), sink, sources, tree);
  return tree;
}

Tree greedy_incremental_tree(const Graph& g, Vertex sink,
                             std::span<const Vertex> sources) {
  Tree tree;
  std::vector<Vertex> tree_vertices{sink};
  std::vector<char> on_tree(g.vertex_count(), 0);
  on_tree[sink] = 1;

  for (Vertex s : sources) {
    if (on_tree[s]) continue;  // a source already grafted (shared vertex)
    const ShortestPaths sp = dijkstra_multi(g, tree_vertices);
    if (sp.dist[s] == kInf) {
      tree.feasible = false;
      continue;
    }
    for (Vertex v : add_parent_path(tree, sp, s)) {
      if (!on_tree[v]) {
        on_tree[v] = 1;
        tree_vertices.push_back(v);
      }
    }
  }
  WSN_TREE_AUDIT(g.vertex_count(), sink, sources, tree);
  return tree;
}

Tree steiner_tree_exact(const Graph& g, Vertex sink,
                        std::span<const Vertex> sources) {
  // Terminal list: sink + distinct sources.
  std::vector<Vertex> terminals{sink};
  for (Vertex s : sources) {
    bool dup = false;
    for (Vertex t : terminals) dup = dup || (t == s);
    if (!dup) terminals.push_back(s);
  }
  const std::size_t k = terminals.size();
  assert(k >= 1 && k <= 16 && "Dreyfus-Wagner is exponential in terminals");
  const std::size_t n = g.vertex_count();
  const std::uint32_t full = static_cast<std::uint32_t>((1u << k) - 1);

  Tree tree;
  if (k == 1) return tree;

  // dp[S][v] = min weight of a tree spanning terminals(S) ∪ {v}.
  std::vector<std::vector<double>> dp(full + 1,
                                      std::vector<double>(n, kInf));
  // Backpointers for reconstruction.
  struct Back {
    enum class Kind : std::uint8_t { kNone, kLeaf, kEdge, kMerge } kind =
        Kind::kNone;
    Vertex via = kNoVertex;      // kEdge: predecessor vertex
    std::uint32_t subset = 0;    // kMerge: one side of the split
  };
  std::vector<std::vector<Back>> back(full + 1, std::vector<Back>(n));

  for (std::size_t i = 0; i < k; ++i) {
    dp[1u << i][terminals[i]] = 0.0;
    back[1u << i][terminals[i]].kind = Back::Kind::kLeaf;
  }

  using Item = std::pair<double, Vertex>;
  for (std::uint32_t S = 1; S <= full; ++S) {
    auto& dpS = dp[S];
    // Merge: combine two disjoint terminal subsets at the same vertex.
    for (std::uint32_t T = (S - 1) & S; T != 0; T = (T - 1) & S) {
      const std::uint32_t R = S ^ T;
      if (T > R) continue;  // each unordered split once
      for (Vertex v = 0; v < n; ++v) {
        if (dp[T][v] == kInf || dp[R][v] == kInf) continue;
        const double w = dp[T][v] + dp[R][v];
        if (w < dpS[v]) {
          dpS[v] = w;
          back[S][v] = {Back::Kind::kMerge, kNoVertex, T};
        }
      }
    }
    // Grow: Dijkstra relaxation of dp[S][*] over graph edges.
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    for (Vertex v = 0; v < n; ++v) {
      if (dpS[v] < kInf) pq.push({dpS[v], v});
    }
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dpS[u]) continue;
      for (const auto& e : g.adjacent(u)) {
        const double nd = d + e.weight;
        if (nd < dpS[e.to]) {
          dpS[e.to] = nd;
          back[S][e.to] = {Back::Kind::kEdge, u, 0};
          pq.push({nd, e.to});
        }
      }
    }
  }

  if (dp[full][sink] == kInf) {
    tree.feasible = false;
    WSN_TREE_AUDIT(n, sink, sources, tree);
    return tree;
  }

  // Reconstruct edges.
  struct Frame {
    std::uint32_t S;
    Vertex v;
  };
  std::vector<Frame> stack{{full, sink}};
  while (!stack.empty()) {
    const auto [S, v] = stack.back();
    stack.pop_back();
    const Back& b = back[S][v];
    switch (b.kind) {
      case Back::Kind::kLeaf:
        break;
      case Back::Kind::kEdge: {
        // Find the connecting edge's weight.
        double w = dp[S][v] - dp[S][b.via];
        tree.add_edge(v, b.via, w);
        stack.push_back({S, b.via});
        break;
      }
      case Back::Kind::kMerge:
        stack.push_back({b.subset, v});
        stack.push_back({S ^ b.subset, v});
        break;
      case Back::Kind::kNone:
        assert(false && "broken backpointer chain");
        break;
    }
  }
  WSN_TREE_AUDIT(n, sink, sources, tree);
  return tree;
}

}  // namespace wsn::trees
