// Abstract source/sink placement models for tree-level comparisons
// (Krishnamachari et al.'s event-radius and random-sources models, §1/§6,
// plus the paper's corner placement).
#pragma once

#include <vector>

#include "net/topology.hpp"
#include "net/vec2.hpp"
#include "sim/random.hpp"
#include "trees/graph.hpp"

namespace wsn::trees {

/// A graph-level experiment instance: who talks to whom, no packet dynamics.
struct AbstractInstance {
  Vertex sink = kNoVertex;
  std::vector<Vertex> sources;
};

/// Event-radius model: an event occurs uniformly at random in the field and
/// every node within `sensing_radius` of it is a source. The sink is a
/// uniformly random non-source node. May return zero sources if the event
/// lands in an empty region — callers should retry.
AbstractInstance make_event_radius_instance(const net::Topology& topo,
                                            double sensing_radius,
                                            sim::Rng& rng);

/// Random-sources model: `k` distinct random nodes are sources; the sink is
/// a random node not among them.
AbstractInstance make_random_sources_instance(const net::Topology& topo,
                                              std::size_t k, sim::Rng& rng);

/// The paper's §5.1 placement: `k` sources from nodes inside `source_rect`
/// (80×80 m bottom-left corner) and a sink inside `sink_rect` (36×36 m
/// top-right corner). Falls back to the nearest nodes when a rect holds too
/// few nodes.
AbstractInstance make_corner_instance(const net::Topology& topo,
                                      std::size_t k, net::Rect source_rect,
                                      net::Rect sink_rect, sim::Rng& rng);

}  // namespace wsn::trees
