// Aggregation-tree constructions: SPT, greedy incremental tree, exact Steiner.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "trees/graph.hpp"

namespace wsn::trees {

/// An aggregation tree connecting sources to a sink. With perfect
/// aggregation the energy cost of using the tree is the number of edges
/// (paper §1), so `total_weight` over unit-weight graphs equals the
/// transmission count per distinct event round.
struct Tree {
  std::set<std::pair<Vertex, Vertex>> edges;  ///< canonical (min,max) pairs
  double total_weight = 0.0;
  bool feasible = true;  ///< false if some source cannot reach the sink

  void add_edge(Vertex u, Vertex v, double w) {
    if (u > v) std::swap(u, v);
    if (edges.emplace(u, v).second) total_weight += w;
  }
};

/// Shortest-path tree: union of each source's shortest path to the sink
/// (single Dijkstra from the sink, deterministic tie-breaks). Aggregation
/// happens wherever paths overlap by chance — the abstract analogue of
/// opportunistic aggregation.
Tree shortest_path_tree(const Graph& g, Vertex sink,
                        std::span<const Vertex> sources);

/// Greedy incremental tree (Takahashi–Matsuyama): connect the first source
/// to the sink via a shortest path, then each subsequent source via a
/// shortest path to the *closest point of the existing tree* — the
/// paper's GIT (§1, §4). Sources are processed in the given order.
Tree greedy_incremental_tree(const Graph& g, Vertex sink,
                             std::span<const Vertex> sources);

/// Exact minimum Steiner tree via Dreyfus–Wagner dynamic programming.
/// O(3^k·n + 2^k·n log n); use with <= ~12 terminals. Terminals =
/// {sink} ∪ sources.
Tree steiner_tree_exact(const Graph& g, Vertex sink,
                        std::span<const Vertex> sources);

}  // namespace wsn::trees
