// Weighted undirected graph + shortest-path primitives for tree studies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wsn::net {
class Topology;
}

namespace wsn::trees {

using Vertex = std::uint32_t;
inline constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

/// Adjacency-list weighted undirected graph.
class Graph {
 public:
  struct Edge {
    Vertex to;
    double weight;
  };

  explicit Graph(std::size_t n) : adj_(n) {}

  void add_edge(Vertex u, Vertex v, double w) {
    adj_[u].push_back({v, w});
    adj_[v].push_back({u, w});
    ++edge_count_;
  }

  [[nodiscard]] std::size_t vertex_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  [[nodiscard]] std::span<const Edge> adjacent(Vertex u) const {
    return {adj_[u].data(), adj_[u].size()};
  }

 private:
  std::vector<std::vector<Edge>> adj_;
  std::size_t edge_count_ = 0;
};

/// Unit-weight graph over a unit-disk topology (1 hop = 1 transmission).
Graph graph_from_topology(const net::Topology& topo);

/// Single-source shortest paths (Dijkstra).
struct ShortestPaths {
  std::vector<double> dist;     ///< +inf when unreachable
  std::vector<Vertex> parent;   ///< kNoVertex at the root / unreachable
};
ShortestPaths dijkstra(const Graph& g, Vertex src);

/// Multi-source Dijkstra: distance to the nearest seed (all seeds at 0).
ShortestPaths dijkstra_multi(const Graph& g, std::span<const Vertex> seeds);

}  // namespace wsn::trees
