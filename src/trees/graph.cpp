#include "trees/graph.hpp"

#include <limits>
#include <queue>

#include "net/topology.hpp"

namespace wsn::trees {

Graph graph_from_topology(const net::Topology& topo) {
  Graph g{topo.node_count()};
  for (net::NodeId u = 0; u < topo.node_count(); ++u) {
    for (net::NodeId v : topo.neighbors(u)) {
      if (v > u) g.add_edge(u, v, 1.0);
    }
  }
  return g;
}

ShortestPaths dijkstra(const Graph& g, Vertex src) {
  const Vertex seeds[] = {src};
  return dijkstra_multi(g, seeds);
}

ShortestPaths dijkstra_multi(const Graph& g, std::span<const Vertex> seeds) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShortestPaths sp;
  sp.dist.assign(g.vertex_count(), kInf);
  sp.parent.assign(g.vertex_count(), kNoVertex);

  using Item = std::pair<double, Vertex>;  // (dist, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (Vertex s : seeds) {
    sp.dist[s] = 0.0;
    pq.push({0.0, s});
  }
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > sp.dist[u]) continue;
    for (const auto& e : g.adjacent(u)) {
      const double nd = d + e.weight;
      if (nd < sp.dist[e.to] ||
          // Deterministic tie-break on equal distance: lower parent id.
          (nd == sp.dist[e.to] && sp.parent[e.to] != kNoVertex &&
           u < sp.parent[e.to])) {
        sp.dist[e.to] = nd;
        sp.parent[e.to] = u;
        pq.push({nd, e.to});
      }
    }
  }
  return sp;
}

}  // namespace wsn::trees
