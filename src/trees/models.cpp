#include "trees/models.hpp"

#include <algorithm>
#include <cassert>

namespace wsn::trees {
namespace {

/// Nodes whose position lies inside `rect`.
std::vector<Vertex> nodes_in_rect(const net::Topology& topo, net::Rect rect) {
  std::vector<Vertex> inside;
  for (net::NodeId i = 0; i < topo.node_count(); ++i) {
    if (rect.contains(topo.position(i))) inside.push_back(i);
  }
  return inside;
}

/// Picks `k` distinct entries from `pool`, in random order. When the pool
/// is smaller than k, tops up with the nodes nearest to the rect centre.
std::vector<Vertex> pick_k(std::vector<Vertex> pool, std::size_t k,
                           const net::Topology& topo, net::Vec2 center,
                           sim::Rng& rng) {
  if (pool.size() < k) {
    std::vector<Vertex> rest;
    std::vector<char> in_pool(topo.node_count(), 0);
    for (Vertex v : pool) in_pool[v] = 1;
    for (net::NodeId i = 0; i < topo.node_count(); ++i) {
      if (!in_pool[i]) rest.push_back(i);
    }
    std::sort(rest.begin(), rest.end(), [&](Vertex a, Vertex b) {
      return distance_sq(topo.position(a), center) <
             distance_sq(topo.position(b), center);
    });
    for (Vertex v : rest) {
      if (pool.size() >= k) break;
      pool.push_back(v);
    }
  }
  rng.shuffle(pool);
  pool.resize(std::min(k, pool.size()));
  return pool;
}

}  // namespace

AbstractInstance make_event_radius_instance(const net::Topology& topo,
                                            double sensing_radius,
                                            sim::Rng& rng) {
  assert(topo.node_count() > 0);
  // Field extent inferred from node positions.
  double max_x = 0.0, max_y = 0.0;
  for (const auto& p : topo.positions()) {
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const net::Vec2 event{rng.uniform(0.0, max_x), rng.uniform(0.0, max_y)};

  AbstractInstance inst;
  const double r_sq = sensing_radius * sensing_radius;
  for (net::NodeId i = 0; i < topo.node_count(); ++i) {
    if (distance_sq(topo.position(i), event) <= r_sq) {
      inst.sources.push_back(i);
    }
  }
  // Sink: random node that is not a source.
  std::vector<char> is_source(topo.node_count(), 0);
  for (Vertex s : inst.sources) is_source[s] = 1;
  std::vector<Vertex> candidates;
  for (net::NodeId i = 0; i < topo.node_count(); ++i) {
    if (!is_source[i]) candidates.push_back(i);
  }
  if (candidates.empty()) {
    inst.sink = 0;
    inst.sources.erase(
        std::remove(inst.sources.begin(), inst.sources.end(), Vertex{0}),
        inst.sources.end());
  } else {
    inst.sink = candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  }
  return inst;
}

AbstractInstance make_random_sources_instance(const net::Topology& topo,
                                              std::size_t k, sim::Rng& rng) {
  assert(topo.node_count() > k);
  AbstractInstance inst;
  auto picks = rng.sample_indices(topo.node_count(), k + 1);
  inst.sink = static_cast<Vertex>(picks.back());
  picks.pop_back();
  for (auto p : picks) inst.sources.push_back(static_cast<Vertex>(p));
  return inst;
}

AbstractInstance make_corner_instance(const net::Topology& topo,
                                      std::size_t k, net::Rect source_rect,
                                      net::Rect sink_rect, sim::Rng& rng) {
  AbstractInstance inst;
  const net::Vec2 src_center{(source_rect.x0 + source_rect.x1) / 2,
                             (source_rect.y0 + source_rect.y1) / 2};
  const net::Vec2 sink_center{(sink_rect.x0 + sink_rect.x1) / 2,
                              (sink_rect.y0 + sink_rect.y1) / 2};
  inst.sources = pick_k(nodes_in_rect(topo, source_rect), k, topo, src_center, rng);
  auto sink_pool = nodes_in_rect(topo, sink_rect);
  // The sink must not be one of the sources.
  std::erase_if(sink_pool, [&](Vertex v) {
    return std::find(inst.sources.begin(), inst.sources.end(), v) !=
           inst.sources.end();
  });
  auto sink_pick = pick_k(std::move(sink_pool), 1, topo, sink_center, rng);
  inst.sink = sink_pick.empty() ? Vertex{0} : sink_pick.front();
  return inst;
}

}  // namespace wsn::trees
