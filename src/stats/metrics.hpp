// The paper's three evaluation metrics (§5.1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "diffusion/metrics_hook.hpp"
#include "stats/accumulator.hpp"

namespace wsn::stats {

/// One run's evaluation results.
struct RunMetrics {
  /// Average dissipated energy: total dissipated energy per node divided by
  /// the number of distinct events received by sinks [J/node/event].
  double avg_dissipated_energy = 0.0;
  /// Same metric over transmit+receive energy only (idle floor excluded).
  /// Isolates the communication share that aggregation can actually reduce;
  /// see EXPERIMENTS.md for how this relates to the paper's numbers.
  double avg_active_energy = 0.0;
  /// Average one-way latency between transmitting an event and receiving it
  /// at a sink, over distinct (sink, event) deliveries [s].
  double avg_delay = 0.0;
  /// Distinct events received / distinct events sent, normalised per sink.
  double delivery_ratio = 0.0;

  std::uint64_t distinct_generated = 0;
  std::uint64_t distinct_received = 0;  ///< summed over sinks
  double total_energy_joules = 0.0;
  double total_active_energy_joules = 0.0;
};

/// Collects generation/delivery observations during a run and computes the
/// paper's metrics afterwards. Distinct-event filtering happens here: an
/// event delivered twice to the same sink is counted (and its delay
/// measured) only on first arrival.
class MetricsCollector final : public diffusion::MetricsHook {
 public:
  void on_event_generated(diffusion::DataItemKey key,
                          sim::Time gen_time) override {
    (void)gen_time;
    generated_.insert(key.packed());
  }

  void on_event_delivered(net::NodeId sink, diffusion::DataItemKey key,
                          sim::Time gen_time,
                          sim::Time delivery_time) override {
    auto& seen = per_sink_[sink];
    if (!seen.insert(key.packed()).second) return;  // duplicate at this sink
    delay_.add((delivery_time - gen_time).as_seconds());
  }

  [[nodiscard]] std::uint64_t distinct_generated() const {
    return generated_.size();
  }
  [[nodiscard]] std::uint64_t distinct_received() const {
    std::uint64_t total = 0;
    // lint:unordered-ok — integer sum, order-insensitive
    for (const auto& [sink, seen] : per_sink_) total += seen.size();
    return total;
  }
  [[nodiscard]] std::uint64_t sinks_seen() const { return per_sink_.size(); }
  [[nodiscard]] const Accumulator& delay() const { return delay_; }

  /// Computes the final metrics given the radio energy totals and the
  /// experiment shape.
  [[nodiscard]] RunMetrics finalize(double total_energy_joules,
                                    double total_active_energy_joules,
                                    std::size_t node_count,
                                    std::size_t sink_count) const;

 private:
  std::unordered_set<std::uint64_t> generated_;
  std::unordered_map<net::NodeId, std::unordered_set<std::uint64_t>> per_sink_;
  Accumulator delay_;
};

}  // namespace wsn::stats
