// Order-sensitive 64-bit digest for cheap cross-run determinism checks.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "stats/metrics.hpp"

namespace wsn::stats {

/// FNV-1a over the exact bit patterns fed to it. Two runs that produce the
/// same digest fed the same values in the same order, so comparing one
/// 64-bit word detects nondeterminism without archiving full metric dumps.
/// Doubles are hashed by bit pattern — bit-identical, not approximately
/// equal, is the bar for reproducibility.
class Digest {
 public:
  void add(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (x >> (8 * i)) & 0xffU;
      h_ *= kPrime;
    }
  }
  void add(std::int64_t x) { add(static_cast<std::uint64_t>(x)); }
  void add(double d) { add(std::bit_cast<std::uint64_t>(d)); }
  void add(std::string_view s) {
    for (unsigned char c : s) {
      h_ ^= c;
      h_ *= kPrime;
    }
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Digest of one run's headline metrics, bit-exact.
[[nodiscard]] inline std::uint64_t digest_of(const RunMetrics& m) {
  Digest d;
  d.add(m.avg_dissipated_energy);
  d.add(m.avg_active_energy);
  d.add(m.avg_delay);
  d.add(m.delivery_ratio);
  d.add(m.distinct_generated);
  d.add(m.distinct_received);
  d.add(m.total_energy_joules);
  d.add(m.total_active_energy_joules);
  return d.value();
}

}  // namespace wsn::stats
