// Streaming statistics accumulators.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace wsn::stats {

/// Welford online mean/variance with min/max tracking.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance. NaN for n < 2: one sample gives *unknown* spread, not
  /// zero spread — reporting 0.0 would print single-field sweeps with error
  /// bars of exactly zero. The CSV/JSON writers render NaN as an empty
  /// field / null.
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1)
                  : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean; NaN for n < 2 (see variance()).
  [[nodiscard]] double sem() const {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_))
                  : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double min() const {
    return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wsn::stats
