#include "stats/metrics.hpp"

namespace wsn::stats {

RunMetrics MetricsCollector::finalize(double total_energy_joules,
                                      double total_active_energy_joules,
                                      std::size_t node_count,
                                      std::size_t sink_count) const {
  RunMetrics m;
  m.distinct_generated = distinct_generated();
  m.distinct_received = distinct_received();
  m.total_energy_joules = total_energy_joules;
  m.total_active_energy_joules = total_active_energy_joules;

  const double denom_ne =
      node_count > 0 && m.distinct_received > 0
          ? static_cast<double>(node_count) *
                static_cast<double>(m.distinct_received)
          : 0.0;
  m.avg_dissipated_energy =
      denom_ne > 0.0 ? total_energy_joules / denom_ne : 0.0;
  m.avg_active_energy =
      denom_ne > 0.0 ? total_active_energy_joules / denom_ne : 0.0;
  m.avg_delay = delay_.mean();
  const double denom = static_cast<double>(m.distinct_generated) *
                       static_cast<double>(sink_count);
  m.delivery_ratio =
      denom > 0.0 ? static_cast<double>(m.distinct_received) / denom : 0.0;
  return m;
}

}  // namespace wsn::stats
