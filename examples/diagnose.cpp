// Diagnostic dump of one run: protocol counters, MAC health, tree shape.
// Useful when tuning parameters or investigating delivery problems.
//
//   $ ./diagnose [nodes] [seed] [algorithm: 0=opportunistic 1=greedy]
#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.hpp"

int main(int argc, char** argv) {
  using namespace wsn;

  scenario::ExperimentConfig cfg;
  cfg.field.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  cfg.algorithm = (argc > 3 && std::atoi(argv[3]) == 1)
                      ? core::Algorithm::kGreedy
                      : core::Algorithm::kOpportunistic;
  cfg.duration = sim::Time::seconds(200.0);

  const scenario::RunResult res = scenario::run_experiment(cfg);

  std::printf("algorithm           : %s\n",
              std::string(core::to_string(cfg.algorithm)).c_str());
  std::printf("avg degree          : %.1f\n", res.average_degree);
  std::printf("energy [J/node/ev]  : %.5f\n", res.metrics.avg_dissipated_energy);
  std::printf("active energy       : %.5f\n", res.metrics.avg_active_energy);
  std::printf("delay [s]           : %.3f\n", res.metrics.avg_delay);
  std::printf("delivery ratio      : %.3f\n", res.metrics.delivery_ratio);
  std::printf("generated distinct  : %llu\n",
              (unsigned long long)res.metrics.distinct_generated);
  std::printf("received distinct   : %llu\n",
              (unsigned long long)res.metrics.distinct_received);
  std::printf("frames sent         : %llu\n", (unsigned long long)res.frames_sent);
  std::printf("arrivals corrupted  : %llu\n",
              (unsigned long long)res.arrivals_corrupted);
  std::printf("MAC drops           : %llu\n", (unsigned long long)res.drops);
  const auto& p = res.protocol;
  std::printf("interests sent      : %llu\n", (unsigned long long)p.interests_sent);
  std::printf("exploratory sent    : %llu\n",
              (unsigned long long)p.exploratory_sent);
  std::printf("data sent           : %llu\n", (unsigned long long)p.data_sent);
  std::printf("icm sent            : %llu\n", (unsigned long long)p.icm_sent);
  std::printf("reinforcements sent : %llu\n",
              (unsigned long long)p.reinforcements_sent);
  std::printf("negatives sent      : %llu\n", (unsigned long long)p.negatives_sent);
  std::printf("repairs attempted   : %llu\n",
              (unsigned long long)p.repairs_attempted);
  std::printf("items dropped (no gradient): %llu\n",
              (unsigned long long)p.items_dropped_no_gradient);
  std::printf("aggregates received : %llu\n",
              (unsigned long long)p.aggregates_received);
  std::printf("tree edges at end   : %zu\n", res.tree_edges.size());
  return 0;
}
