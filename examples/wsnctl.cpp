// wsnctl — command-line front end for the experiment runner.
//
// Runs one experiment per invocation and prints the paper's metrics (and
// optionally a CSV row), exposing every knob the library offers:
//
//   $ ./wsnctl --nodes 250 --alg greedy --sources 8 --sinks 2
//               --duration 300 --seed 7 --placement corner --mac csma
//               --aggregation perfect --failures --csv
//
// Defaults reproduce one Figure-5 point.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "agg/aggregation_fn.hpp"
#include "scenario/experiment.hpp"

namespace {

void usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N          field size (default 150)\n"
      "  --alg A            opportunistic | greedy (default greedy)\n"
      "  --mac M            csma | tdma (default csma)\n"
      "  --sources N        number of sources (default 5)\n"
      "  --sinks N          number of sinks (default 1)\n"
      "  --placement P      corner | random (default corner)\n"
      "  --aggregation F    perfect | linear | packing | timestamp\n"
      "  --duration S       simulated seconds (default 200)\n"
      "  --seed N           RNG seed (default 1)\n"
      "  --failures         enable the 20%%/30 s failure process\n"
      "  --directional      corridor-based interest dissemination,\n"
      "                     task scoped to the source corner\n"
      "  --csv              emit one machine-readable CSV line\n"
      "  --tree             print the final aggregation tree edges\n",
      prog);
}

bool flag_eq(const char* a, const char* b) { return std::strcmp(a, b) == 0; }

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = 150;
  cfg.duration = sim::Time::seconds(200.0);
  bool csv = false;
  bool print_tree = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag_eq(a, "--help") || flag_eq(a, "-h")) {
      usage(argv[0]);
      return 0;
    } else if (flag_eq(a, "--nodes")) {
      cfg.field.nodes = std::strtoul(next(), nullptr, 10);
    } else if (flag_eq(a, "--alg")) {
      const std::string v = next();
      if (v == "opportunistic") {
        cfg.algorithm = core::Algorithm::kOpportunistic;
      } else if (v == "greedy") {
        cfg.algorithm = core::Algorithm::kGreedy;
      } else {
        std::fprintf(stderr, "unknown --alg %s\n", v.c_str());
        return 2;
      }
    } else if (flag_eq(a, "--mac")) {
      const std::string v = next();
      if (v == "csma") {
        cfg.mac_type = scenario::MacType::kCsma;
      } else if (v == "tdma") {
        cfg.mac_type = scenario::MacType::kTdma;
      } else {
        std::fprintf(stderr, "unknown --mac %s\n", v.c_str());
        return 2;
      }
    } else if (flag_eq(a, "--sources")) {
      cfg.num_sources = std::strtoul(next(), nullptr, 10);
    } else if (flag_eq(a, "--sinks")) {
      cfg.num_sinks = std::strtoul(next(), nullptr, 10);
    } else if (flag_eq(a, "--placement")) {
      const std::string v = next();
      if (v == "corner") {
        cfg.source_placement = scenario::SourcePlacement::kCorner;
      } else if (v == "random") {
        cfg.source_placement = scenario::SourcePlacement::kRandom;
      } else {
        std::fprintf(stderr, "unknown --placement %s\n", v.c_str());
        return 2;
      }
    } else if (flag_eq(a, "--aggregation")) {
      const std::string v = next();
      if (v == "perfect") {
        cfg.diffusion.aggregation = std::make_shared<agg::PerfectAggregation>(64);
      } else if (v == "linear") {
        cfg.diffusion.aggregation = std::make_shared<agg::LinearAggregation>(28, 36);
      } else if (v == "packing") {
        cfg.diffusion.aggregation = std::make_shared<agg::PackingAggregation>(64, 36);
      } else if (v == "timestamp") {
        cfg.diffusion.aggregation =
            std::make_shared<agg::TimestampAggregation>(28, 24, 36);
      } else {
        std::fprintf(stderr, "unknown --aggregation %s\n", v.c_str());
        return 2;
      }
    } else if (flag_eq(a, "--duration")) {
      cfg.duration = sim::Time::seconds(std::strtod(next(), nullptr));
    } else if (flag_eq(a, "--seed")) {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (flag_eq(a, "--failures")) {
      cfg.failures.enabled = true;
    } else if (flag_eq(a, "--directional")) {
      cfg.diffusion.interest_propagation =
          diffusion::InterestPropagation::kDirectional;
      cfg.interest_region = cfg.source_rect;
    } else if (flag_eq(a, "--csv")) {
      csv = true;
    } else if (flag_eq(a, "--tree")) {
      print_tree = true;
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", a);
      return 2;
    }
  }

  const auto res = scenario::run_experiment(cfg);
  const auto& m = res.metrics;
  if (csv) {
    std::printf("%zu,%s,%zu,%zu,%llu,%.6f,%.6f,%.4f,%.4f,%llu,%.3f\n",
                cfg.field.nodes, std::string(core::to_string(cfg.algorithm)).c_str(),
                cfg.num_sources, cfg.num_sinks,
                static_cast<unsigned long long>(cfg.seed),
                m.avg_dissipated_energy, m.avg_active_energy, m.avg_delay,
                m.delivery_ratio,
                static_cast<unsigned long long>(res.frames_sent),
                res.average_degree);
  } else {
    std::printf("nodes=%zu alg=%s sources=%zu sinks=%zu seed=%llu degree=%.1f\n",
                cfg.field.nodes, std::string(core::to_string(cfg.algorithm)).c_str(),
                cfg.num_sources, cfg.num_sinks,
                static_cast<unsigned long long>(cfg.seed), res.average_degree);
    std::printf("energy     : %.5f J/node/event (tx+rx: %.5f)\n",
                m.avg_dissipated_energy, m.avg_active_energy);
    std::printf("delay      : %.3f s\n", m.avg_delay);
    std::printf("delivery   : %.3f (%llu/%llu distinct)\n", m.delivery_ratio,
                static_cast<unsigned long long>(m.distinct_received),
                static_cast<unsigned long long>(m.distinct_generated));
    std::printf("frames     : %llu   hottest node: %.2f J\n",
                static_cast<unsigned long long>(res.frames_sent),
                res.energy_max_node_joules);
  }
  if (print_tree) {
    for (const auto& [from, to] : res.tree_edges) {
      std::printf("tree %u -> %u\n", from, to);
    }
  }
  return 0;
}
