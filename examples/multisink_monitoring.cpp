// Multi-sink monitoring (paper §5.4, Figure 8 scenario): several users pull
// the same corner phenomenon from different places in the field. Shows how
// the shared gradient field serves several sinks at once and compares the
// two instantiations as sinks are added.
//
//   $ ./multisink_monitoring [max_sinks]
#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const std::size_t max_sinks =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  std::printf("Monitoring a corner phenomenon from 1..%zu sinks "
              "(200 nodes, 5 corner sources, 120 s)\n\n",
              max_sinks);
  std::printf("%-6s %-14s %10s %10s %10s %10s\n", "sinks", "algorithm",
              "energy", "tx+rx", "delivery", "delay[s]");

  for (std::size_t sinks = 1; sinks <= max_sinks; ++sinks) {
    for (auto alg :
         {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
      scenario::ExperimentConfig cfg;
      cfg.field.nodes = 200;
      cfg.num_sinks = sinks;
      cfg.algorithm = alg;
      cfg.duration = sim::Time::seconds(120.0);
      cfg.seed = 2;
      const auto res = scenario::run_experiment(cfg);
      std::printf("%-6zu %-14s %10.5f %10.5f %10.3f %10.3f\n", sinks,
                  std::string(core::to_string(alg)).c_str(),
                  res.metrics.avg_dissipated_energy,
                  res.metrics.avg_active_energy, res.metrics.delivery_ratio,
                  res.metrics.avg_delay);
    }
  }
  std::printf("\nExpect the greedy advantage to shrink as scattered sinks "
              "pull the tree apart (paper Figure 8).\n");
  return 0;
}
