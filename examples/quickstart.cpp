// Quickstart: run one greedy-aggregation experiment and print the paper's
// three metrics next to the opportunistic baseline.
//
//   $ ./quickstart [nodes] [seed]
//
// Defaults: 150 nodes (≈19 neighbours), seed 1, 200 simulated seconds.
#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.hpp"

int main(int argc, char** argv) {
  using namespace wsn;

  scenario::ExperimentConfig cfg;
  cfg.field.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  cfg.duration = sim::Time::seconds(200.0);

  std::printf("Field: %zu nodes in %.0fx%.0f m, radio range %.0f m\n",
              cfg.field.nodes, cfg.field.side_m, cfg.field.side_m,
              cfg.field.radio_range_m);
  std::printf("Workload: %zu corner sources -> %zu sink(s), %.0f s\n\n",
              cfg.num_sources, cfg.num_sinks, cfg.duration.as_seconds());

  std::printf("%-14s %12s %10s %10s %9s %8s\n", "algorithm", "energy[J/ev]",
              "delay[s]", "delivery", "frames", "degree");
  for (core::Algorithm alg :
       {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
    cfg.algorithm = alg;
    const scenario::RunResult res = scenario::run_experiment(cfg);
    std::printf("%-14s %12.4f %10.3f %10.3f %9llu %8.1f\n",
                std::string(core::to_string(alg)).c_str(),
                res.metrics.avg_dissipated_energy, res.metrics.avg_delay,
                res.metrics.delivery_ratio,
                static_cast<unsigned long long>(res.frames_sent),
                res.average_degree);
  }
  return 0;
}
