// Renders the final aggregation trees of both instantiations as ASCII art
// and as Graphviz DOT, making the paper's Figure 1 (late vs early
// aggregation) visible on a real simulated field.
//
//   $ ./tree_visualizer [nodes] [seed] [--dot]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "scenario/experiment.hpp"

namespace {

using namespace wsn;

void render_ascii(const scenario::RunResult& res,
                  const scenario::ExperimentConfig& cfg) {
  // 40x20 character canvas over the 200x200 m field.
  constexpr int W = 50, H = 22;
  std::vector<std::string> canvas(H, std::string(W, ' '));

  // Re-derive node positions the same way the runner did (same seed).
  sim::Rng master{cfg.seed};
  sim::Rng field_rng = master.fork(1);
  const auto pts = net::generate_connected_field(cfg.field, field_rng);

  auto plot = [&](net::Vec2 p, char c) {
    const int x = std::min(W - 1, static_cast<int>(p.x / cfg.field.side_m * W));
    const int y =
        std::min(H - 1, static_cast<int>((1.0 - p.y / cfg.field.side_m) * H));
    char& cell = canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
    // Don't let plain markers overwrite sources/sinks.
    if (cell == 'S' || cell == '#') return;
    cell = c;
  };

  for (const auto& [from, to] : res.tree_edges) {
    // Draw tree links as interpolated dots.
    const auto a = pts[from];
    const auto b = pts[to];
    for (int k = 0; k <= 6; ++k) {
      const double t = k / 6.0;
      plot({a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t}, '.');
    }
  }
  for (const auto& [from, to] : res.tree_edges) plot(pts[from], 'o');
  for (auto s : res.sources) plot(pts[s], 'S');
  for (auto k : res.sinks) plot(pts[k], '#');

  for (const auto& row : canvas) std::printf("|%s|\n", row.c_str());
}

void render_dot(const scenario::RunResult& res, const char* name) {
  std::printf("digraph %s {\n  rankdir=LR;\n", name);
  for (auto s : res.sources) {
    std::printf("  n%u [shape=doublecircle,label=\"S%u\"];\n", s, s);
  }
  for (auto k : res.sinks) {
    std::printf("  n%u [shape=box,label=\"sink %u\"];\n", k, k);
  }
  for (const auto& [from, to] : res.tree_edges) {
    std::printf("  n%u -> n%u;\n", from, to);
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  cfg.duration = sim::Time::seconds(120.0);
  const bool dot = argc > 3 && std::strcmp(argv[3], "--dot") == 0;

  for (auto alg : {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
    cfg.algorithm = alg;
    const auto res = scenario::run_experiment(cfg);
    if (dot) {
      render_dot(res, std::string(core::to_string(alg)).c_str());
      continue;
    }
    std::printf("--- %s tree ---  (S=source, #=sink, o=relay, .=link)\n",
                std::string(core::to_string(alg)).c_str());
    render_ascii(res, cfg);
    std::printf("tree edges: %zu   frames: %llu   delivery: %.3f\n\n",
                res.tree_edges.size(),
                static_cast<unsigned long long>(res.frames_sent),
                res.metrics.delivery_ratio);
  }
  std::printf("The greedy tree should show the corner sources sharing a "
              "single trunk toward the sink (early aggregation, paper "
              "Figure 1b); the opportunistic tree keeps more separate "
              "paths (late aggregation, Figure 1a).\n");
  return 0;
}
