// The paper's §2 motivating scenario: tracking animals in a wilderness
// refuge. A user (sink) tasks the network with an interest scoped to a
// remote sub-region; only sensors detecting animals *inside that region*
// become sources. This example drives the public API directly (no
// ExperimentRunner) to show how a bespoke deployment is assembled.
//
//   $ ./animal_tracking [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/algorithm.hpp"
#include "mac/channel.hpp"
#include "mac/csma_mac.hpp"
#include "net/field.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;

  // --- deploy 120 sensor nodes over a 200x200 m refuge ---
  sim::Rng master{seed};
  sim::Rng field_rng = master.fork(1);
  net::FieldSpec spec;
  spec.nodes = 120;
  const net::Topology topo{net::generate_connected_field(spec, field_rng),
                           spec.radio_range_m, spec.carrier_sense_range_m};

  sim::Simulator sim;
  mac::Channel channel{sim, topo};
  mac::PhyParams phy;
  mac::EnergyParams energy;
  diffusion::DiffusionParams params;

  stats::MetricsCollector metrics;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
  std::vector<std::unique_ptr<diffusion::DiffusionNode>> nodes;
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, id, phy,
                                                  energy,
                                                  master.fork(100 + id)));
    nodes.push_back(core::make_diffusion_node(
        core::Algorithm::kGreedy, sim, *macs[id], topo.position(id), params,
        master.fork(500 + id), &metrics));
  }

  // --- the tracking task: animals in the north-west quadrant ---
  const net::Rect watch_region{0.0, 100.0, 100.0, 200.0};

  // The user node is whichever sensor sits closest to the south-east corner
  // (the ranger station).
  net::NodeId user = 0;
  double best = 1e18;
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    const double d = distance(topo.position(id), {200.0, 0.0});
    if (d < best) {
      best = d;
      user = id;
    }
  }
  nodes[user]->make_sink(watch_region);

  // Animals wander: sensors all over the park detect movement, but only
  // those inside the tasked region will answer the interest.
  sim::Rng wander = master.fork(9);
  int in_region = 0;
  for (int i = 0; i < 10; ++i) {
    const auto id = static_cast<net::NodeId>(
        wander.uniform_int(0, static_cast<std::int64_t>(topo.node_count()) - 1));
    nodes[id]->set_detecting(true);
    if (watch_region.contains(topo.position(id))) ++in_region;
  }
  for (auto& n : nodes) n->start();

  std::printf("Wilderness refuge: %zu sensors, user node %u at (%.0f, %.0f)\n",
              topo.node_count(), user, topo.position(user).x,
              topo.position(user).y);
  std::printf("Interest region: x in [%.0f,%.0f], y in [%.0f,%.0f]\n",
              watch_region.x0, watch_region.x1, watch_region.y0,
              watch_region.y1);
  std::printf("Detecting sensors: 10 total, %d inside the tasked region\n\n",
              in_region);

  sim.run_until(sim::Time::seconds(120.0));

  int active = 0;
  for (auto& n : nodes) active += n->is_active_source() ? 1 : 0;
  std::printf("Active sources (must equal in-region detectors): %d\n", active);
  std::printf("Track updates delivered to the user: %llu distinct events\n",
              static_cast<unsigned long long>(metrics.distinct_received()));
  std::printf("Mean track latency: %.3f s\n", metrics.delay().mean());

  double joules = 0.0;
  for (auto& m : macs) joules += m->energy_joules(sim.now());
  std::printf("Network energy over %.0f s: %.1f J total (%.3f J/node)\n",
              sim.now().as_seconds(), joules,
              joules / static_cast<double>(topo.node_count()));
  return active == in_region ? 0 : 1;
}
