// Residual-energy scans with outline aggregation — the paper's §3 example
// of *lossy* aggregation (after eScan, Zhao/Govindan/Estrin 2001).
//
// Runs a tracking workload long enough to wear the network unevenly, then
// builds the residual-energy map two ways:
//   * full scan: every node reports (position, residual) individually;
//   * outline:   topologically adjacent nodes with similar residuals are
//                represented by one aggregate (here: grid cells carrying a
//                min/max residual band — the bounding-polygon idea on a
//                grid), trading accuracy for message size.
//
//   $ ./energy_scan [nodes] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "scenario/experiment.hpp"

namespace {

struct Cell {
  double min_residual = 1e18;
  double max_residual = -1e18;
  int count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;
  scenario::ExperimentConfig cfg;
  cfg.field.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  cfg.algorithm = core::Algorithm::kGreedy;
  cfg.duration = sim::Time::seconds(200.0);

  std::printf("Wearing the network: %zu nodes, greedy aggregation, %.0f s\n",
              cfg.field.nodes, cfg.duration.as_seconds());
  const auto res = scenario::run_experiment(cfg);

  // Residual energy per node, from a 50 J starting budget.
  constexpr double kBudget = 50.0;
  const std::size_t n = res.node_energy_joules.size();
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) {
    residual[i] = kBudget - res.node_energy_joules[i];
  }

  // --- outline aggregation: 8x8 grid of 25 m cells ---
  constexpr int kGrid = 8;
  const double cell_m = cfg.field.side_m / kGrid;
  std::vector<Cell> cells(kGrid * kGrid);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = res.node_positions[i];
    const int cx = std::min(kGrid - 1, static_cast<int>(p.x / cell_m));
    const int cy = std::min(kGrid - 1, static_cast<int>(p.y / cell_m));
    Cell& c = cells[static_cast<std::size_t>(cy * kGrid + cx)];
    c.min_residual = std::min(c.min_residual, residual[i]);
    c.max_residual = std::max(c.max_residual, residual[i]);
    ++c.count;
  }

  // Heat map of the *minimum* residual per cell (the number an operator
  // cares about: where will the first hole appear?).
  const double lo = *std::min_element(residual.begin(), residual.end());
  const double hi = *std::max_element(residual.begin(), residual.end());
  std::printf("\nResidual-energy outline (min per 25 m cell; # = most "
              "drained, . = freshest, blank = empty):\n");
  std::printf("field range: %.2f .. %.2f J residual\n", lo, hi);
  const char shades[] = "#@*+-. ";
  for (int cy = kGrid - 1; cy >= 0; --cy) {
    std::printf("  |");
    for (int cx = 0; cx < kGrid; ++cx) {
      const Cell& c = cells[static_cast<std::size_t>(cy * kGrid + cx)];
      if (c.count == 0) {
        std::printf("  ");
        continue;
      }
      const double t = (c.min_residual - lo) / (hi - lo + 1e-12);
      const int idx = std::min(5, static_cast<int>(t * 6.0));
      std::printf("%c ", shades[idx]);
    }
    std::printf("|\n");
  }

  // --- lossless vs outline report sizes and the accuracy given up ---
  const std::size_t full_bytes = n * 12;  // (x, y, residual) per node
  std::size_t used_cells = 0;
  double worst_band = 0.0;
  for (const Cell& c : cells) {
    if (c.count == 0) continue;
    ++used_cells;
    worst_band = std::max(worst_band, c.max_residual - c.min_residual);
  }
  const std::size_t outline_bytes = used_cells * 10;  // cell id + band
  std::printf("\nfull scan: %zu B   outline: %zu B   compression: %.1fx\n",
              full_bytes, outline_bytes,
              static_cast<double>(full_bytes) /
                  static_cast<double>(outline_bytes));
  std::printf("accuracy given up: widest in-cell residual band = %.3f J "
              "(%.1f%% of the field's spread)\n",
              worst_band, 100.0 * worst_band / (hi - lo + 1e-12));
  std::printf("\nThe drained streak should trace the greedy trunk between "
              "the source corner (bottom-left) and the sink (top-right).\n");
  return 0;
}
