// Figure 6: impact of node failures — every 30 s, 20% of the nodes are
// switched off (no settling time), across the density sweep.
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::open_csv("fig6_failures");
  bench::ResultsJson json{"fig6_failures"};
  bench::print_figure_header(
      "Figure 6", "impact of node failures (20% down, rotating every 30 s)",
      fields, secs, "nodes");
  for (std::size_t nodes : bench::density_sweep()) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = nodes;
    cfg.duration = sim::Time::seconds(secs);
    cfg.failures.enabled = true;
    const auto p = bench::run_point(std::to_string(nodes), cfg, fields);
    bench::print_point(p);
    json.add(p);
  }
  bench::print_expectation(
      "delivery drops for both; greedy suffers more at low density (single "
      "tree, no spare paths) and less at high density (smaller tree exposes "
      "fewer nodes to failure); opportunistic pays more energy per received "
      "event where its delivery is lower.");
  bench::close_csv();
  json.write(fields, secs);
  return 0;
}
