// Microbenchmarks: discrete-event engine primitives.
#include <benchmark/benchmark.h>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace wsn::sim;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng{1};
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule(Time::nanos(rng.uniform_int(0, 1'000'000)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  Rng rng{2};
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventHandle> hs;
    for (int i = 0; i < 10'000; ++i) {
      hs.push_back(q.schedule(Time::nanos(rng.uniform_int(0, 1'000'000)), [] {}));
    }
    for (std::size_t i = 0; i < hs.size(); i += 2) q.cancel(hs[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int remaining = 100'000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_in(Time::micros(10), tick);
    };
    sim.schedule_in(Time::micros(10), tick);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_RngNext(benchmark::State& state) {
  Rng rng{3};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng{4};
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_int(0, 31));
}
BENCHMARK(BM_RngUniformInt);

}  // namespace

BENCHMARK_MAIN();
