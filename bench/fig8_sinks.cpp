// Figure 8: sensitivity to the number of sinks (1..5) in the 350-node
// field. The first sink sits in the top-right corner; the rest are
// scattered uniformly.
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::open_csv("fig8_sinks");
  bench::ResultsJson json{"fig8_sinks"};
  bench::print_figure_header("Figure 8", "impact of the number of sinks "
                             "(350 nodes, 5 corner sources)",
                             fields, secs, "sinks");
  for (std::size_t sinks = 1; sinks <= 5; ++sinks) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 350;
    cfg.duration = sim::Time::seconds(secs);
    cfg.num_sinks = sinks;
    const auto p = bench::run_point(std::to_string(sinks), cfg, fields);
    bench::print_point(p);
    json.add(p);
  }
  bench::print_expectation(
      "with more (scattered) sinks the energy gap closes — like random "
      "source placement — but greedy keeps a delivery-ratio edge because "
      "early aggregation lowers overall traffic.");
  bench::close_csv();
  json.write(fields, secs);
  return 0;
}
