// Ablation: §4.3 path truncation (set-cover-driven negative reinforcement).
//
// Without truncation, redundant paths built during exploratory rounds are
// never pruned, so both instantiations carry duplicate traffic.
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::ResultsJson json{"ablation_truncation"};
  std::printf("=== Ablation: path truncation on/off (250 nodes) ===\n");
  std::printf("fields/point=%d sim=%.0fs\n", fields, secs);
  std::printf("%-22s | %-12s | %-12s | %-9s | %-9s\n", "variant",
              "energy total", "energy tx+rx", "delay [s]", "delivery");
  for (auto alg : {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
    for (bool trunc : {true, false}) {
      scenario::ExperimentConfig cfg;
      cfg.field.nodes = 250;
      cfg.duration = sim::Time::seconds(secs);
      cfg.algorithm = alg;
      cfg.diffusion.enable_truncation = trunc;
      const auto p = scenario::run_replicates(cfg, fields, 1);
      char label[64];
      std::snprintf(label, sizeof label, "%s %s",
                    std::string(core::to_string(alg)).c_str(),
                    trunc ? "+trunc" : "-trunc");
      std::printf("%-22s | %12.5f | %12.5f | %9.3f | %9.3f\n", label,
                  p.energy.mean(), p.active_energy.mean(), p.delay.mean(),
                  p.delivery.mean());
      json.add(std::string(core::to_string(alg)),
               trunc ? "trunc" : "no-trunc", p);
    }
  }
  std::printf("expected: disabling truncation raises tx+rx energy for both "
              "variants (stale duplicate paths keep transmitting).\n");
  json.write(fields, secs);
  return 0;
}
