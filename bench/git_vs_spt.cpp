// Abstract (graph-level) comparison of the greedy incremental tree vs the
// shortest-path tree, reproducing the Krishnamachari-et-al. observation the
// paper cites in §1/§6: under the event-radius and random-sources models the
// GIT's transmission savings over the SPT do not exceed ~20% — while the
// paper's own *corner* placement yields much larger savings, which is why
// the packet-level results in Figure 5 can beat that bound.
#include <cstdio>

#include "net/field.hpp"
#include "net/topology.hpp"
#include "scenario/sweep.hpp"
#include "sim/random.hpp"
#include "stats/accumulator.hpp"
#include "trees/aggregation_trees.hpp"
#include "trees/models.hpp"

namespace {

using namespace wsn;

struct ModelResult {
  stats::Accumulator savings;  ///< 1 - GIT/SPT, in percent
  stats::Accumulator git_over_opt;
};

template <typename MakeInstance>
ModelResult evaluate(std::size_t nodes, int trials, MakeInstance make,
                     bool with_optimum) {
  ModelResult res;
  sim::Rng rng{77};
  for (int t = 0; t < trials; ++t) {
    net::FieldSpec spec;
    spec.nodes = nodes;
    const net::Topology topo{net::generate_connected_field(spec, rng),
                             spec.radio_range_m};
    const trees::Graph g = trees::graph_from_topology(topo);
    const trees::AbstractInstance inst = make(topo, rng);
    if (inst.sources.empty()) continue;
    const auto spt = trees::shortest_path_tree(g, inst.sink, inst.sources);
    const auto git =
        trees::greedy_incremental_tree(g, inst.sink, inst.sources);
    if (!spt.feasible || !git.feasible || spt.total_weight == 0) continue;
    res.savings.add((1.0 - git.total_weight / spt.total_weight) * 100.0);
    if (with_optimum && inst.sources.size() <= 6) {
      const auto opt = trees::steiner_tree_exact(g, inst.sink, inst.sources);
      if (opt.feasible && opt.total_weight > 0) {
        res.git_over_opt.add(git.total_weight / opt.total_weight);
      }
    }
  }
  return res;
}

}  // namespace

int main() {
  const int trials = scenario::fields_from_env(20);
  std::printf("=== GIT vs SPT (abstract tree-level comparison, §1/§6) ===\n");
  std::printf("trials/point=%d; savings = 1 - GIT/SPT transmissions\n", trials);
  std::printf("%-6s | %-22s | %-22s | %-22s | %s\n", "nodes",
              "event-radius  (sav %)", "random-sources (sav %)",
              "corner placement (sav %)", "GIT/optimal");

  for (std::size_t nodes : {50u, 100u, 150u, 200u, 250u, 300u, 350u}) {
    const auto er = evaluate(
        nodes, trials,
        [](const net::Topology& t, sim::Rng& r) {
          return trees::make_event_radius_instance(t, 30.0, r);
        },
        false);
    const auto rs = evaluate(
        nodes, trials,
        [](const net::Topology& t, sim::Rng& r) {
          return trees::make_random_sources_instance(t, 5, r);
        },
        true);
    const auto corner = evaluate(
        nodes, trials,
        [](const net::Topology& t, sim::Rng& r) {
          return trees::make_corner_instance(t, 5, {0, 0, 80, 80},
                                             {164, 164, 200, 200}, r);
        },
        false);
    std::printf("%-6zu | %8.1f ± %-11.1f | %8.1f ± %-11.1f | %8.1f ± %-11.1f | %6.3f\n",
                nodes, er.savings.mean(), er.savings.stddev(),
                rs.savings.mean(), rs.savings.stddev(), corner.savings.mean(),
                corner.savings.stddev(), rs.git_over_opt.mean());
  }
  std::printf(
      "paper-expected shape: event-radius and random-sources savings stay "
      "under ~20%%; the corner placement (sources far from the sink, close "
      "to each other) yields much larger savings — the regime where the "
      "paper's greedy aggregation shines. GIT stays within 2x of the exact "
      "Steiner optimum (Takahashi-Matsuyama bound).\n");
  return 0;
}
