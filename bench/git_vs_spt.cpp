// Abstract (graph-level) comparison of the greedy incremental tree vs the
// shortest-path tree, reproducing the Krishnamachari-et-al. observation the
// paper cites in §1/§6: under the event-radius and random-sources models the
// GIT's transmission savings over the SPT do not exceed ~20% — while the
// paper's own *corner* placement yields much larger savings, which is why
// the packet-level results in Figure 5 can beat that bound.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.hpp"

#include "net/field.hpp"
#include "net/topology.hpp"
#include "scenario/parallel.hpp"
#include "scenario/sweep.hpp"
#include "sim/random.hpp"
#include "stats/accumulator.hpp"
#include "trees/aggregation_trees.hpp"
#include "trees/models.hpp"

namespace {

using namespace wsn;

struct ModelResult {
  stats::Accumulator savings;  ///< 1 - GIT/SPT, in percent
  stats::Accumulator git_over_opt;
};

struct TrialResult {
  double savings = std::numeric_limits<double>::quiet_NaN();
  double git_over_opt = std::numeric_limits<double>::quiet_NaN();
};

template <typename MakeInstance>
ModelResult evaluate(std::size_t nodes, int trials, MakeInstance make,
                     bool with_optimum) {
  // Each trial forks its own stream off the base seed, so trials are
  // independent and can run on the WSN_JOBS workers; merging the
  // trial-indexed slots in order keeps the result job-count-invariant.
  std::vector<TrialResult> slots(static_cast<std::size_t>(trials));
  scenario::for_each_index(slots.size(), [&](std::size_t t) {
    sim::Rng rng = sim::Rng{77}.fork(t);
    net::FieldSpec spec;
    spec.nodes = nodes;
    const net::Topology topo{net::generate_connected_field(spec, rng),
                             spec.radio_range_m};
    const trees::Graph g = trees::graph_from_topology(topo);
    const trees::AbstractInstance inst = make(topo, rng);
    if (inst.sources.empty()) return;
    const auto spt = trees::shortest_path_tree(g, inst.sink, inst.sources);
    const auto git =
        trees::greedy_incremental_tree(g, inst.sink, inst.sources);
    if (!spt.feasible || !git.feasible || spt.total_weight == 0) return;
    slots[t].savings = (1.0 - git.total_weight / spt.total_weight) * 100.0;
    if (with_optimum && inst.sources.size() <= 6) {
      const auto opt = trees::steiner_tree_exact(g, inst.sink, inst.sources);
      if (opt.feasible && opt.total_weight > 0) {
        slots[t].git_over_opt = git.total_weight / opt.total_weight;
      }
    }
  });
  ModelResult res;
  for (const TrialResult& t : slots) {
    if (!std::isnan(t.savings)) res.savings.add(t.savings);
    if (!std::isnan(t.git_over_opt)) res.git_over_opt.add(t.git_over_opt);
  }
  return res;
}

}  // namespace

int main() {
  const int trials = scenario::fields_from_env(20);
  bench::ResultsJson json{"git_vs_spt"};
  std::printf("=== GIT vs SPT (abstract tree-level comparison, §1/§6) ===\n");
  std::printf("trials/point=%d; savings = 1 - GIT/SPT transmissions\n", trials);
  std::printf("%-6s | %-22s | %-22s | %-22s | %s\n", "nodes",
              "event-radius  (sav %)", "random-sources (sav %)",
              "corner placement (sav %)", "GIT/optimal");

  for (std::size_t nodes : {50u, 100u, 150u, 200u, 250u, 300u, 350u}) {
    const auto er = evaluate(
        nodes, trials,
        [](const net::Topology& t, sim::Rng& r) {
          return trees::make_event_radius_instance(t, 30.0, r);
        },
        false);
    const auto rs = evaluate(
        nodes, trials,
        [](const net::Topology& t, sim::Rng& r) {
          return trees::make_random_sources_instance(t, 5, r);
        },
        true);
    const auto corner = evaluate(
        nodes, trials,
        [](const net::Topology& t, sim::Rng& r) {
          return trees::make_corner_instance(t, 5, {0, 0, 80, 80},
                                             {164, 164, 200, 200}, r);
        },
        false);
    std::printf("%-6zu | %8.1f ± %-11.1f | %8.1f ± %-11.1f | %8.1f ± %-11.1f | %6.3f\n",
                nodes, er.savings.mean(), er.savings.stddev(),
                rs.savings.mean(), rs.savings.stddev(), corner.savings.mean(),
                corner.savings.stddev(), rs.git_over_opt.mean());
    json.add(std::to_string(nodes), "event_radius",
             {{"savings_pct", &er.savings}});
    json.add(std::to_string(nodes), "random_sources",
             {{"savings_pct", &rs.savings},
              {"git_over_opt", &rs.git_over_opt}});
    json.add(std::to_string(nodes), "corner",
             {{"savings_pct", &corner.savings}});
  }
  std::printf(
      "paper-expected shape: event-radius and random-sources savings stay "
      "under ~20%%; the corner placement (sources far from the sink, close "
      "to each other) yields much larger savings — the regime where the "
      "paper's greedy aggregation shines. GIT stays within 2x of the exact "
      "Steiner optimum (Takahashi-Matsuyama bound).\n");
  json.write(trials, 0.0);
  return 0;
}
