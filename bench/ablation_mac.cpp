// Ablation: CSMA/CA (the paper's modified 802.11) vs TDMA (its §4.2
// alternative) under the greedy aggregation, across density.
//
// TDMA trades contention losses and idle listening for scheduling latency:
// a global schedule is collision-free, but each node transmits at most once
// per cycle, so delay grows with the cycle (≈ nodes × slot).
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::ResultsJson json{"ablation_mac"};
  std::printf("=== Ablation: CSMA/CA vs TDMA link layer (greedy) ===\n");
  std::printf("fields/point=%d sim=%.0fs\n", fields, secs);
  std::printf("%-8s %-6s | %-12s | %-12s | %-9s | %-9s\n", "nodes", "mac",
              "energy total", "energy tx+rx", "delay [s]", "delivery");
  for (std::size_t nodes : {50u, 150u, 250u}) {
    for (auto mac_type : {scenario::MacType::kCsma, scenario::MacType::kTdma}) {
      scenario::ExperimentConfig cfg;
      cfg.field.nodes = nodes;
      cfg.algorithm = core::Algorithm::kGreedy;
      cfg.mac_type = mac_type;
      cfg.duration = sim::Time::seconds(secs);
      const auto p = scenario::run_replicates(cfg, fields, 1);
      const char* mac = mac_type == scenario::MacType::kCsma ? "csma" : "tdma";
      std::printf("%-8zu %-6s | %12.5f | %12.5f | %9.3f | %9.3f\n", nodes,
                  mac, p.energy.mean(), p.active_energy.mean(),
                  p.delay.mean(), p.delivery.mean());
      json.add(std::to_string(nodes), mac, p);
    }
  }
  std::printf("expected: TDMA delivers without any collisions but pays "
              "cycle-bound latency that grows with node count; CSMA keeps "
              "delay flat and loses a little to contention.\n");
  json.write(fields, secs);
  return 0;
}
