// Figure 10: the Figure-9 sweep under *linear* aggregation
// (z(S) = d·28 B + 36 B — lossless packing, headers are the only saving).
#include "agg/aggregation_fn.hpp"
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::open_csv("fig10_linear");
  bench::ResultsJson json{"fig10_linear"};
  bench::print_figure_header("Figure 10", "linear aggregation z = 28d + 36 "
                             "(350 nodes, corner sources)",
                             fields, secs, "sources");
  for (std::size_t sources : {2u, 5u, 8u, 11u, 14u}) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 350;
    cfg.duration = sim::Time::seconds(secs);
    cfg.num_sources = sources;
    cfg.diffusion.aggregation = std::make_shared<agg::LinearAggregation>(28, 36);
    const auto p = bench::run_point(std::to_string(sources), cfg, fields);
    bench::print_point(p);
    json.add(p);
  }
  bench::print_expectation(
      "the inefficient aggregation function bites harder as sources grow: "
      "at 10+ sources greedy's savings are a few points lower than under "
      "perfect aggregation (paper: 36% vs 43% at 10 sources).");
  bench::close_csv();
  json.write(fields, secs);
  return 0;
}
