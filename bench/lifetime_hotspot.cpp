// Traffic concentration and network lifetime (paper §3).
//
// The paper warns that aggregated data paths "introduce traffic
// concentration ... which adversely impacts network lifetime" when the
// aggregation does not reduce total data size — and argues that with a
// reasonable reduction the longer-but-shared paths *extend* lifetime
// because the scarce resource is total energy. This harness measures both
// sides: the hottest node's energy (lifetime proxy) and the per-node
// spread, under perfect and under linear aggregation.
#include <cstdio>

#include "agg/aggregation_fn.hpp"
#include "bench_common.hpp"

namespace {

struct HotspotRow {
  wsn::stats::Accumulator max_node;
  wsn::stats::Accumulator mean_node;
  wsn::stats::Accumulator stddev_node;
  wsn::stats::Accumulator delivery;
  wsn::stats::Accumulator lifetime_days;
};

HotspotRow measure(wsn::core::Algorithm alg, bool linear, int fields,
                   double secs) {
  using namespace wsn;
  // Fields run in parallel (WSN_JOBS) into seed-indexed slots and are
  // merged in seed order, like run_replicates.
  std::vector<scenario::RunResult> slots(static_cast<std::size_t>(fields));
  scenario::for_each_index(slots.size(), [&](std::size_t f) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 250;
    cfg.algorithm = alg;
    cfg.num_sources = 8;
    cfg.duration = sim::Time::seconds(secs);
    cfg.seed = 1 + static_cast<std::uint64_t>(f);
    if (linear) {
      cfg.diffusion.aggregation = std::make_shared<agg::LinearAggregation>(28, 36);
    }
    slots[f] = scenario::run_experiment(cfg);
  });
  HotspotRow row;
  for (const auto& res : slots) {
    row.max_node.add(res.energy_max_node_joules);
    row.mean_node.add(res.energy_mean_node_joules);
    row.stddev_node.add(res.energy_stddev_node_joules);
    row.delivery.add(res.metrics.delivery_ratio);
    // Lifetime proxy: two AA cells ≈ 18.7 kJ.
    row.lifetime_days.add(res.first_death_seconds(18700.0, secs) / 86400.0);
  }
  return row;
}

}  // namespace

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::ResultsJson json{"lifetime_hotspot"};
  std::printf("=== Traffic concentration & lifetime (250 nodes, 8 corner "
              "sources) ===\n");
  std::printf("fields/point=%d sim=%.0fs; lifetime = 18.7 kJ battery / "
              "hottest-node power\n",
              fields, secs);
  std::printf("%-24s | %-10s | %-10s | %-10s | %-9s | %-12s\n", "variant",
              "max J/node", "mean J/node", "stddev", "delivery",
              "lifetime[d]");
  for (bool linear : {false, true}) {
    for (auto alg :
         {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
      const auto row = measure(alg, linear, fields, secs);
      char label[64];
      std::snprintf(label, sizeof label, "%s/%s",
                    std::string(core::to_string(alg)).c_str(),
                    linear ? "linear" : "perfect");
      std::printf("%-24s | %10.3f | %10.3f | %10.3f | %9.3f | %12.1f\n",
                  label, row.max_node.mean(), row.mean_node.mean(),
                  row.stddev_node.mean(), row.delivery.mean(),
                  row.lifetime_days.mean());
      json.add(std::string(core::to_string(alg)),
               linear ? "linear" : "perfect",
               {{"max_node_j", &row.max_node},
                {"mean_node_j", &row.mean_node},
                {"stddev_node_j", &row.stddev_node},
                {"delivery", &row.delivery},
                {"lifetime_days", &row.lifetime_days}});
    }
  }
  std::printf("expected: greedy's trunk is busy, but the baseline's "
              "duplicated corner paths are the worse hotspot — greedy ends "
              "up with lower mean, lower spread and a cooler hottest node, "
              "so the first-death lifetime improves (paper §3's favourable "
              "regime); linear aggregation narrows the gap.\n");
  json.write(fields, secs);
  return 0;
}
