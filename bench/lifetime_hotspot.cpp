// Traffic concentration and network lifetime (paper §3).
//
// The paper warns that aggregated data paths "introduce traffic
// concentration ... which adversely impacts network lifetime" when the
// aggregation does not reduce total data size — and argues that with a
// reasonable reduction the longer-but-shared paths *extend* lifetime
// because the scarce resource is total energy. This harness measures both
// sides: the hottest node's energy (lifetime proxy) and the per-node
// spread, under perfect and under linear aggregation.
#include <cstdio>

#include "agg/aggregation_fn.hpp"
#include "bench_common.hpp"

namespace {

struct HotspotRow {
  double max_node = 0.0;
  double mean_node = 0.0;
  double stddev_node = 0.0;
  double delivery = 0.0;
  double lifetime_days = 0.0;
};

HotspotRow measure(wsn::core::Algorithm alg, bool linear, int fields,
                   double secs) {
  using namespace wsn;
  HotspotRow row;
  for (int f = 0; f < fields; ++f) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 250;
    cfg.algorithm = alg;
    cfg.num_sources = 8;
    cfg.duration = sim::Time::seconds(secs);
    cfg.seed = 1 + static_cast<std::uint64_t>(f);
    if (linear) {
      cfg.diffusion.aggregation = std::make_shared<agg::LinearAggregation>(28, 36);
    }
    const auto res = scenario::run_experiment(cfg);
    row.max_node += res.energy_max_node_joules;
    row.mean_node += res.energy_mean_node_joules;
    row.stddev_node += res.energy_stddev_node_joules;
    row.delivery += res.metrics.delivery_ratio;
    // Lifetime proxy: two AA cells ≈ 18.7 kJ.
    row.lifetime_days += res.first_death_seconds(18700.0, secs) / 86400.0;
  }
  row.max_node /= fields;
  row.mean_node /= fields;
  row.stddev_node /= fields;
  row.delivery /= fields;
  row.lifetime_days /= fields;
  return row;
}

}  // namespace

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  std::printf("=== Traffic concentration & lifetime (250 nodes, 8 corner "
              "sources) ===\n");
  std::printf("fields/point=%d sim=%.0fs; lifetime = 18.7 kJ battery / "
              "hottest-node power\n",
              fields, secs);
  std::printf("%-24s | %-10s | %-10s | %-10s | %-9s | %-12s\n", "variant",
              "max J/node", "mean J/node", "stddev", "delivery",
              "lifetime[d]");
  for (bool linear : {false, true}) {
    for (auto alg :
         {core::Algorithm::kOpportunistic, core::Algorithm::kGreedy}) {
      const auto row = measure(alg, linear, fields, secs);
      char label[64];
      std::snprintf(label, sizeof label, "%s/%s",
                    std::string(core::to_string(alg)).c_str(),
                    linear ? "linear" : "perfect");
      std::printf("%-24s | %10.3f | %10.3f | %10.3f | %9.3f | %12.1f\n",
                  label, row.max_node, row.mean_node, row.stddev_node,
                  row.delivery, row.lifetime_days);
    }
  }
  std::printf("expected: greedy's trunk is busy, but the baseline's "
              "duplicated corner paths are the worse hotspot — greedy ends "
              "up with lower mean, lower spread and a cooler hottest node, "
              "so the first-death lifetime improves (paper §3's favourable "
              "regime); linear aggregation narrows the gap.\n");
  return 0;
}
