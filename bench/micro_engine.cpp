// Engine hot-path microbenchmarks with a JSON perf trajectory.
//
// Unlike the google-benchmark micro_* binaries (interactive tuning), this
// harness writes results/BENCH_micro_engine.json via the bench_common
// writer so engine throughput is diffable across PRs with
// tools/bench_diff.py. Three panels:
//
//   queue      raw EventQueue schedule/cancel/pop throughput (ops/sec)
//   channel    arrival-delivery throughput of a broadcast storm on the
//              fig-5 350-node field (arrivals/sec)
//   50/200/350 end-to-end run_experiment at the fig-5 density points:
//              simulated seconds per wall second and dispatched events/sec
//   protocol   data messages/s through an established 3-hop chain (the
//              pooled-message + flat-map hot path, no metrics hook), plus
//              peak RSS and live pool slots sampled at the 350-node point
//   trace      paired 350-node runs, untraced vs traced to a file: the
//              untraced leg witnesses the <1% tracing-off overhead budget,
//              the traced leg prices the full varint file sink (records/s)
//
// Scale knobs: WSN_SIM_TIME (default 30 s per end-to-end run), WSN_FIELDS
// (default 3 repetitions per panel), WSN_MICRO_SCALE (default 4; divides
// to 1 for CI smoke runs). The end-to-end panel prints each run's metric
// digest — same seed must give the same digest whatever the engine does.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "mac/channel.hpp"
#include "mac/csma_mac.hpp"
#include "mac/mac_base.hpp"
#include "net/field.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/digest.hpp"
#include "trace/trace.hpp"

namespace {

using namespace wsn;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Panel 1: the queue alone. Schedules a batch of randomly-timed events,
/// cancels every third one, drains the rest; counts every schedule, cancel
/// and pop as one op.
double queue_ops_per_sec(int rounds) {
  sim::Rng rng{42};
  sim::EventQueue q;
  constexpr int kBatch = 50'000;
  std::vector<sim::EventHandle> handles;
  handles.reserve(kBatch);
  std::uint64_t ops = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    handles.clear();
    for (int i = 0; i < kBatch; ++i) {
      handles.push_back(q.schedule(
          sim::Time::nanos(rng.uniform_int(0, 1'000'000'000)), [] {}));
    }
    ops += kBatch;
    for (int i = 0; i < kBatch; i += 3) {
      q.cancel(handles[static_cast<std::size_t>(i)]);
      ++ops;
    }
    while (!q.empty()) {
      q.pop();
      ++ops;
    }
  }
  return static_cast<double>(ops) / seconds_since(t0);
}

/// Counts deliveries; no protocol reaction, so the panel isolates channel
/// fan-out + event-engine cost.
class CountingMac final : public mac::MacBase {
 public:
  CountingMac(sim::Simulator& sim, mac::Channel& channel, net::NodeId id,
              const mac::EnergyParams& energy)
      : MacBase{sim, channel, id, energy} {}

  void send(net::Frame /*frame*/) override {}
  void set_alive(bool alive) override { alive_ = alive; }
  void arrival_start(const mac::TransmissionPtr& /*tx*/,
                     bool decodable) override {
    arrival_starts += decodable ? 1u : 0u;
  }
  void arrival_end(const mac::TransmissionPtr& /*tx*/) override {
    ++arrival_ends;
  }

  std::uint64_t arrival_starts = 0;
  std::uint64_t arrival_ends = 0;
};

/// Panel 2: a staggered broadcast storm on the fig-5 350-node field. Every
/// transmission fans out to the full carrier-sense disc (~150 radios at
/// this density), which is exactly the per-event load §5.1 runs at.
double channel_arrivals_per_sec(int transmissions) {
  net::FieldSpec spec;
  spec.nodes = 350;
  sim::Rng field_rng{7};
  const auto positions = net::generate_connected_field(spec, field_rng);
  const net::Topology topo{positions, spec.radio_range_m,
                           spec.carrier_sense_range_m};

  sim::Simulator sim;
  mac::Channel channel{sim, topo};
  mac::EnergyParams energy;
  std::vector<std::unique_ptr<CountingMac>> macs;
  macs.reserve(topo.node_count());
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    macs.push_back(std::make_unique<CountingMac>(sim, channel, id, energy));
  }

  const sim::Time airtime = sim::Time::micros(500);
  for (int i = 0; i < transmissions; ++i) {
    const auto src = static_cast<net::NodeId>(
        static_cast<std::size_t>(i) * 13 % topo.node_count());
    // Staggered so at most a handful of frames overlap, like real traffic.
    sim.schedule_at(sim::Time::micros(200) * i, [&channel, src, airtime] {
      net::Frame f;
      f.src = src;
      f.dst = net::kBroadcast;
      f.bytes = 64;
      channel.begin_transmission(src, std::move(f), mac::FrameKind::kData,
                                 airtime);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const double wall = seconds_since(t0);
  std::uint64_t arrivals = 0;
  for (const auto& m : macs) arrivals += m->arrival_starts + m->arrival_ends;
  return static_cast<double>(arrivals) / wall;
}

/// Peak resident set size in MiB (VmHWM); 0 where unsupported.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

/// Panel 4: the protocol data path in isolation. A 4-node chain
/// source → relay → relay → sink with an established reinforced route —
/// every data packet exercises the pooled-message allocate/release cycle,
/// the flat-map per-node state, and the MAC ring, with no metrics hook in
/// the way. Returns data messages carried per wall second.
double protocol_chain_msgs_per_sec(double secs) {
  const std::vector<net::Vec2> chain{{0.0, 0.0}, {30.0, 0.0}, {60.0, 0.0},
                                     {90.0, 0.0}};
  sim::Simulator sim;
  const net::Topology topo{chain, 40.0};
  mac::Channel channel{sim, topo};
  const mac::PhyParams phy;
  const mac::EnergyParams energy;
  const diffusion::DiffusionParams params;
  sim::Rng master{1};
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
  std::vector<std::unique_ptr<diffusion::DiffusionNode>> nodes;
  for (net::NodeId i = 0; i < topo.node_count(); ++i) {
    macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, i, phy,
                                                  energy, master.fork(100 + i)));
    nodes.push_back(core::make_diffusion_node(
        core::Algorithm::kOpportunistic, sim, *macs[i], topo.position(i),
        params, master.fork(500 + i), nullptr));
  }
  nodes.back()->make_sink({-10000.0, -10000.0, 10000.0, 10000.0});
  nodes.front()->set_detecting(true);
  for (auto& n : nodes) n->start();

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(sim::Time::seconds(secs));
  const double wall = seconds_since(t0);
  std::uint64_t msgs = 0;
  for (const auto& n : nodes) msgs += n->stats().data_sent;
  return static_cast<double>(msgs) / wall;
}

}  // namespace

int main() {
  const int reps = scenario::fields_from_env(3);
  const double secs = scenario::sim_seconds_from_env(30.0);
  const auto scale =
      static_cast<int>(scenario::env_long("WSN_MICRO_SCALE", 4, 1, 1000));

  bench::ResultsJson json{"micro_engine"};
  std::printf("=== micro_engine: discrete-event hot path ===\n");
  std::printf("reps=%d  sim=%.0fs  scale=%d\n", reps, secs, scale);

  stats::Accumulator queue_ops;
  for (int r = 0; r < reps; ++r) queue_ops.add(queue_ops_per_sec(scale));
  std::printf("%-10s | %.3g queue ops/sec\n", "queue", queue_ops.mean());
  json.add("queue", "engine", {{"ops_per_sec", &queue_ops}});

  stats::Accumulator fanout;
  for (int r = 0; r < reps; ++r) {
    fanout.add(channel_arrivals_per_sec(2'500 * scale));
  }
  std::printf("%-10s | %.3g arrivals/sec\n", "channel", fanout.mean());
  json.add("channel", "engine", {{"arrivals_per_sec", &fanout}});

  // End-to-end fig-5 points. The digest printed per run is the same-seed
  // reproducibility witness: engine rewrites may change throughput, never
  // the digest of a given seed within one build.
  stats::Accumulator pool_live_350;
  stats::Accumulator pool_slots_350;
  stats::Accumulator peak_rss_350;
  for (const std::size_t nodes : {std::size_t{50}, std::size_t{200},
                                  std::size_t{350}}) {
    stats::Accumulator sim_per_wall;
    stats::Accumulator events_per_sec;
    for (int r = 0; r < reps; ++r) {
      scenario::ExperimentConfig cfg;
      cfg.field.nodes = nodes;
      cfg.duration = sim::Time::seconds(secs);
      cfg.seed = 1 + static_cast<std::uint64_t>(r);
      const auto t0 = std::chrono::steady_clock::now();
      const scenario::RunResult res = scenario::run_experiment(cfg);
      const double wall = seconds_since(t0);
      sim_per_wall.add(secs / wall);
      events_per_sec.add(static_cast<double>(res.events_dispatched) / wall);
      if (nodes == 350) {
        pool_live_350.add(static_cast<double>(res.pool_slots_live));
        pool_slots_350.add(static_cast<double>(res.pool_slots_created));
        peak_rss_350.add(peak_rss_mib());
      }
      std::printf("%-10zu | seed %" PRIu64 ": %7.1f sim-s/wall-s  %.3g ev/s"
                  "  digest %016" PRIx64 "\n",
                  nodes, cfg.seed, secs / wall,
                  static_cast<double>(res.events_dispatched) / wall,
                  stats::digest_of(res.metrics));
    }
    json.add(std::to_string(nodes), "engine",
             {{"sim_per_wall", &sim_per_wall},
              {"events_per_sec", &events_per_sec}});
  }

  // Protocol data-path panel: a long chain run (10× the end-to-end sim
  // time) so the steady-state pooled cycle dominates setup.
  stats::Accumulator chain_msgs;
  for (int r = 0; r < reps; ++r) {
    chain_msgs.add(protocol_chain_msgs_per_sec(10.0 * secs));
  }
  std::printf("%-10s | %.3g data msgs/sec  %.1f MiB peak RSS @350"
              "  %.0f pool slots (%.0f live) @350\n",
              "protocol", chain_msgs.mean(), peak_rss_350.mean(),
              pool_slots_350.mean(), pool_live_350.mean());
  json.add("protocol", "engine",
           {{"data_msgs_per_sec", &chain_msgs},
            {"peak_rss_mib_350", &peak_rss_350},
            {"pool_slots_created_350", &pool_slots_350},
            {"pool_slots_live_350", &pool_live_350}});

  // Trace panel: paired 350-node runs. The untraced leg re-measures the
  // fig-5 point with the trace hook compiled in but no tracer attached —
  // bench_diff against the 350 panel keeps the tracing-off cost honest —
  // and the traced leg runs the same seeds with the full file sink on.
  stats::Accumulator trace_off;
  stats::Accumulator trace_on;
  stats::Accumulator trace_records;
  for (int r = 0; r < reps; ++r) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 350;
    cfg.duration = sim::Time::seconds(secs);
    cfg.seed = 1 + static_cast<std::uint64_t>(r);
    auto t0 = std::chrono::steady_clock::now();
    scenario::run_experiment(cfg);
    trace_off.add(secs / seconds_since(t0));

    cfg.trace.path = "/tmp/wsn_micro_engine-{seed}.trc";
    t0 = std::chrono::steady_clock::now();
    const scenario::RunResult traced = scenario::run_experiment(cfg);
    const double wall_on = seconds_since(t0);
    trace_on.add(secs / wall_on);
    trace_records.add(
        static_cast<double>(traced.trace_counters.total()) / wall_on);
    std::remove(trace::resolve_trace_path(cfg.trace.path, cfg.seed).c_str());
  }
  std::printf("%-10s | off %.1f / on %.1f sim-s/wall-s (%+.1f%% traced)"
              "  %.3g records/sec\n",
              "trace", trace_off.mean(), trace_on.mean(),
              (trace_on.mean() / trace_off.mean() - 1.0) * 100.0,
              trace_records.mean());
  json.add("trace", "engine",
           {{"sim_per_wall_off_350", &trace_off},
            {"sim_per_wall_on_350", &trace_on},
            {"records_per_sec_350", &trace_records}});

  json.write(reps, secs);
  return 0;
}
