// Ablation: §2's directional interest dissemination.
//
// The paper's evaluation floods interests network-wide; §2 also sketches
// sending interests "only to a subset of neighbors in the direction of the
// specified region". With the task scoped to the source corner, directional
// propagation confines the interest/exploratory overhead to the
// sink-to-region corridor.
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::ResultsJson json{"ablation_directional"};
  std::printf("=== Ablation: interest dissemination, flood vs directional "
              "(greedy, task scoped to the 80x80 m corner) ===\n");
  std::printf("fields/point=%d sim=%.0fs\n", fields, secs);
  std::printf("%-8s %-13s | %-12s | %-12s | %-9s | %-9s\n", "nodes",
              "mode", "energy total", "energy tx+rx", "delay [s]",
              "delivery");
  for (std::size_t nodes : {100u, 250u, 350u}) {
    for (auto mode : {diffusion::InterestPropagation::kFlood,
                      diffusion::InterestPropagation::kDirectional}) {
      scenario::ExperimentConfig cfg;
      cfg.field.nodes = nodes;
      cfg.algorithm = core::Algorithm::kGreedy;
      cfg.duration = sim::Time::seconds(secs);
      cfg.interest_region = cfg.source_rect;  // task scoped to the corner
      cfg.diffusion.interest_propagation = mode;
      const auto p = scenario::run_replicates(cfg, fields, 1);
      const char* mode_name =
          mode == diffusion::InterestPropagation::kFlood ? "flood"
                                                         : "directional";
      std::printf("%-8zu %-13s | %12.5f | %12.5f | %9.3f | %9.3f\n", nodes,
                  mode_name, p.energy.mean(), p.active_energy.mean(),
                  p.delay.mean(), p.delivery.mean());
      json.add(std::to_string(nodes), mode_name, p);
    }
  }
  std::printf("expected: the corridor trims the interest-flood share of "
              "tx+rx energy (≈10-15%% at 350 nodes), delivery intact — the "
              "optimisation §2 hints at. Exploratory events already follow "
              "gradients, so they stay inside the corridor too.\n");
  json.write(fields, secs);
  return 0;
}
