// Ablation: the positive-reinforcement wait T_p (paper §4.1).
//
// T_p is what gives the incremental-cost messages time to reveal a cheaper
// graft point before the sink commits. With T_p = 0 the greedy instantiation
// degenerates to a lowest-energy-path tree (each source gets its own
// shortest path; no deliberate sharing).
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::ResultsJson json{"ablation_tp"};
  std::printf("=== Ablation: reinforcement wait T_p (greedy, 250 nodes) ===\n");
  std::printf("fields/point=%d sim=%.0fs\n", fields, secs);
  std::printf("%-8s | %-12s | %-12s | %-9s | %-9s\n", "T_p [s]",
              "energy total", "energy tx+rx", "delay [s]", "delivery");
  for (double tp : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 250;
    cfg.duration = sim::Time::seconds(secs);
    cfg.algorithm = core::Algorithm::kGreedy;
    cfg.diffusion.t_p = sim::Time::seconds(tp);
    const auto p = scenario::run_replicates(cfg, fields, 1);
    std::printf("%-8.2f | %12.5f | %12.5f | %9.3f | %9.3f\n", tp,
                p.energy.mean(), p.active_energy.mean(), p.delay.mean(),
                p.delivery.mean());
    char label[32];
    std::snprintf(label, sizeof label, "%.2f", tp);
    json.add(label, "greedy", p);
  }
  std::printf("expected: energy (tx+rx) falls from T_p=0 to the paper's "
              "T_p=1 s as ICMs get time to arrive; beyond that, little "
              "change but slower tree setup.\n");
  json.write(fields, secs);
  return 0;
}
