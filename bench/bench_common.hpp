// Shared plumbing for the figure-reproduction harnesses.
//
// Every figure binary prints the same three panels the paper plots —
// average dissipated energy, average delay, distinct-event delivery ratio —
// for the opportunistic baseline and the greedy aggregation side by side,
// plus the tx/rx-only energy variant discussed in EXPERIMENTS.md.
//
// Scale knobs (paper: 10 fields per point, 400 s per run):
//   WSN_FIELDS=<n>    fields averaged per point   (default 5)
//   WSN_SIM_TIME=<s>  simulated seconds per run   (default 200)
//   WSN_JOBS=<n>      parallel replicate workers  (default: hardware
//                     concurrency; 1 forces the serial path; results are
//                     bit-identical either way)
// Machine-readable output:
//   - set WSN_CSV=<dir> and each figure harness appends its series to
//     <dir>/<figure>.csv for plotting (see plots/); the header is written
//     only when the file is created, so multi-figure and re-runs into one
//     dir compose.
//   - each harness also writes results/BENCH_<figure>.json (points, means,
//     SEMs, wall-clock seconds, jobs, seed0) so the perf trajectory is
//     tracked across PRs; override the dir with WSN_RESULTS (empty
//     disables).
#pragma once

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/parallel.hpp"
#include "scenario/sweep.hpp"

namespace wsn::bench {

namespace detail {
inline FILE*& csv_file() {
  static FILE* f = nullptr;
  return f;
}
}  // namespace detail

/// Formats one CSV/JSON-ish numeric field; NaN (unknown, e.g. the SEM of a
/// single-field run) becomes the empty string instead of a fake 0.
inline std::string csv_field(double v, int precision = 6) {
  if (std::isnan(v)) return "";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// Opens <WSN_CSV>/<figure>.csv for append when the env var is set; no-op
/// otherwise. The header row is written only when the file is newly
/// created, so re-running a figure extends its series instead of silently
/// truncating it; open failures warn on stderr instead of being swallowed.
inline void open_csv(const char* figure) {
  const char* dir = std::getenv("WSN_CSV");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + figure + ".csv";
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for append: %s\n",
                 path.c_str(), std::strerror(errno));
    return;
  }
  detail::csv_file() = f;
  // Append-mode position before the first write is implementation-defined;
  // seek to the end to learn whether the file already has content.
  std::fseek(f, 0, SEEK_END);
  if (std::ftell(f) == 0) {
    std::fprintf(f,
                 "x,energy_opp,energy_greedy,active_opp,active_greedy,"
                 "delay_opp,delay_greedy,delivery_opp,delivery_greedy,"
                 "energy_opp_sem,energy_greedy_sem\n");
  }
}

inline void close_csv() {
  if (detail::csv_file() != nullptr) {
    std::fclose(detail::csv_file());
    detail::csv_file() = nullptr;
  }
}

struct SweepPoint {
  std::string label;
  scenario::AveragedPoint opportunistic;
  scenario::AveragedPoint greedy;
};

/// Runs both algorithms on `base` (its `algorithm` field is overwritten).
/// Replicates parallelise across WSN_JOBS workers; see run_replicates.
inline SweepPoint run_point(std::string label, scenario::ExperimentConfig base,
                            int fields, std::uint64_t seed0 = 1) {
  SweepPoint p;
  p.label = std::move(label);
  base.algorithm = core::Algorithm::kOpportunistic;
  p.opportunistic = scenario::run_replicates(base, fields, seed0);
  base.algorithm = core::Algorithm::kGreedy;
  p.greedy = scenario::run_replicates(base, fields, seed0);
  return p;
}

/// Collects a harness's points and writes results/BENCH_<figure>.json at
/// the end of the run: every (label, series) pair with per-metric
/// mean/SEM/n, plus wall-clock seconds, the job count and seed0. NaN SEMs
/// (single-field runs) are emitted as null. All adds happen on the main
/// thread, after the parallel replicates of a point have been merged.
class ResultsJson {
 public:
  explicit ResultsJson(std::string figure)
      : figure_{std::move(figure)},
        start_{std::chrono::steady_clock::now()} {}

  void add(const std::string& label, const std::string& series,
           const scenario::AveragedPoint& p) {
    Entry e;
    e.label = label;
    e.series = series;
    e.metrics.push_back(metric("energy", p.energy));
    e.metrics.push_back(metric("active_energy", p.active_energy));
    e.metrics.push_back(metric("delay", p.delay));
    e.metrics.push_back(metric("delivery", p.delivery));
    e.metrics.push_back(metric("degree", p.degree));
    entries_.push_back(std::move(e));
  }

  void add(const SweepPoint& p) {
    add(p.label, "opportunistic", p.opportunistic);
    add(p.label, "greedy", p.greedy);
  }

  /// For harnesses whose rows are not AveragedPoints (lifetime, GIT/SPT).
  void add(const std::string& label, const std::string& series,
           std::initializer_list<
               std::pair<const char*, const stats::Accumulator*>>
               metrics) {
    Entry e;
    e.label = label;
    e.series = series;
    for (const auto& [name, acc] : metrics) {
      e.metrics.push_back(metric(name, *acc));
    }
    entries_.push_back(std::move(e));
  }

  void write(int fields, double sim_seconds, std::uint64_t seed0 = 1) const {
    const char* env_dir = std::getenv("WSN_RESULTS");
    const std::string dir = env_dir != nullptr ? env_dir : "results";
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/BENCH_" + figure_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot write %s: %s\n", path.c_str(),
                   std::strerror(errno));
      return;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::fprintf(f,
                 "{\n  \"figure\": \"%s\",\n  \"fields\": %d,\n"
                 "  \"sim_seconds\": %.6g,\n  \"seed0\": %llu,\n"
                 "  \"jobs\": %d,\n  \"wall_seconds\": %.3f,\n"
                 "  \"points\": [\n",
                 figure_.c_str(), fields, sim_seconds,
                 static_cast<unsigned long long>(seed0),
                 scenario::jobs_from_env(), wall);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "    {\"label\": \"%s\", \"series\": \"%s\", ",
                   e.label.c_str(), e.series.c_str());
      std::fprintf(f, "\"metrics\": {");
      for (std::size_t m = 0; m < e.metrics.size(); ++m) {
        const Metric& mt = e.metrics[m];
        std::fprintf(f, "\"%s\": {\"n\": %llu, \"mean\": %s, \"sem\": %s}%s",
                     mt.name.c_str(),
                     static_cast<unsigned long long>(mt.n),
                     json_num(mt.mean).c_str(), json_num(mt.sem).c_str(),
                     m + 1 < e.metrics.size() ? ", " : "");
      }
      std::fprintf(f, "}}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%.1fs wall, %d jobs)\n", path.c_str(), wall,
                scenario::jobs_from_env());
  }

 private:
  struct Metric {
    std::string name;
    std::uint64_t n = 0;
    double mean = 0.0;
    double sem = 0.0;
  };
  struct Entry {
    std::string label;
    std::string series;
    std::vector<Metric> metrics;
  };

  static Metric metric(const char* name, const stats::Accumulator& a) {
    return Metric{name, a.count(), a.mean(), a.sem()};
  }

  /// JSON has no NaN/Inf literals; unknown values become null.
  static std::string json_num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string figure_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Entry> entries_;
};

inline void print_figure_header(const char* figure, const char* description,
                                int fields, double sim_seconds,
                                const char* x_label) {
  std::printf("=== %s: %s ===\n", figure, description);
  std::printf("fields/point=%d  sim=%.0fs  jobs=%d  (paper: 10 fields, "
              "energy in J/node/received distinct event)\n",
              fields, sim_seconds, scenario::jobs_from_env());
  std::printf("%-10s | %-26s | %-26s | %-17s | %-15s\n", x_label,
              "energy total  opp / greedy", "energy tx+rx  opp / greedy",
              "delay[s] opp/grdy", "delivery opp/grdy");
}

inline void print_point(const SweepPoint& p) {
  const auto& o = p.opportunistic;
  const auto& g = p.greedy;
  const double ratio_total =
      o.energy.mean() > 0 ? g.energy.mean() / o.energy.mean() : 0.0;
  const double ratio_active =
      o.active_energy.mean() > 0
          ? g.active_energy.mean() / o.active_energy.mean()
          : 0.0;
  std::printf(
      "%-10s | %8.5f %8.5f  (%3.0f%%) | %8.5f %8.5f  (%3.0f%%) | "
      "%7.3f %7.3f   | %6.3f %6.3f\n",
      p.label.c_str(), o.energy.mean(), g.energy.mean(), ratio_total * 100.0,
      o.active_energy.mean(), g.active_energy.mean(), ratio_active * 100.0,
      o.delay.mean(), g.delay.mean(), o.delivery.mean(), g.delivery.mean());
  if (detail::csv_file() != nullptr) {
    std::fprintf(detail::csv_file(),
                 "%s,%.6f,%.6f,%.6f,%.6f,%.4f,%.4f,%.4f,%.4f,%s,%s\n",
                 p.label.c_str(), o.energy.mean(), g.energy.mean(),
                 o.active_energy.mean(), g.active_energy.mean(),
                 o.delay.mean(), g.delay.mean(), o.delivery.mean(),
                 g.delivery.mean(), csv_field(o.energy.sem()).c_str(),
                 csv_field(g.energy.sem()).c_str());
  }
}

inline void print_expectation(const char* text) {
  std::printf("paper-expected shape: %s\n", text);
}

/// The paper's seven density points: 50..350 nodes in steps of 50.
inline std::vector<std::size_t> density_sweep() {
  return {50, 100, 150, 200, 250, 300, 350};
}

}  // namespace wsn::bench
