// Shared plumbing for the figure-reproduction harnesses.
//
// Every figure binary prints the same three panels the paper plots —
// average dissipated energy, average delay, distinct-event delivery ratio —
// for the opportunistic baseline and the greedy aggregation side by side,
// plus the tx/rx-only energy variant discussed in EXPERIMENTS.md.
//
// Scale knobs (paper: 10 fields per point, 400 s per run):
//   WSN_FIELDS=<n>    fields averaged per point   (default 5)
//   WSN_SIM_TIME=<s>  simulated seconds per run   (default 200)
// Machine-readable output: set WSN_CSV=<dir> and each figure harness also
// appends its series to <dir>/<figure>.csv for plotting (see plots/).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/sweep.hpp"

namespace wsn::bench {

namespace detail {
inline FILE*& csv_file() {
  static FILE* f = nullptr;
  return f;
}
}  // namespace detail

/// Opens <WSN_CSV>/<figure>.csv when the env var is set; no-op otherwise.
inline void open_csv(const char* figure) {
  const char* dir = std::getenv("WSN_CSV");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + figure + ".csv";
  detail::csv_file() = std::fopen(path.c_str(), "w");
  if (detail::csv_file() != nullptr) {
    std::fprintf(detail::csv_file(),
                 "x,energy_opp,energy_greedy,active_opp,active_greedy,"
                 "delay_opp,delay_greedy,delivery_opp,delivery_greedy,"
                 "energy_opp_sem,energy_greedy_sem\n");
  }
}

inline void close_csv() {
  if (detail::csv_file() != nullptr) {
    std::fclose(detail::csv_file());
    detail::csv_file() = nullptr;
  }
}

struct SweepPoint {
  std::string label;
  scenario::AveragedPoint opportunistic;
  scenario::AveragedPoint greedy;
};

/// Runs both algorithms on `base` (its `algorithm` field is overwritten).
inline SweepPoint run_point(std::string label, scenario::ExperimentConfig base,
                            int fields, std::uint64_t seed0 = 1) {
  SweepPoint p;
  p.label = std::move(label);
  base.algorithm = core::Algorithm::kOpportunistic;
  p.opportunistic = scenario::run_replicates(base, fields, seed0);
  base.algorithm = core::Algorithm::kGreedy;
  p.greedy = scenario::run_replicates(base, fields, seed0);
  return p;
}

inline void print_figure_header(const char* figure, const char* description,
                                int fields, double sim_seconds,
                                const char* x_label) {
  std::printf("=== %s: %s ===\n", figure, description);
  std::printf("fields/point=%d  sim=%.0fs  (paper: 10 fields, energy in "
              "J/node/received distinct event)\n",
              fields, sim_seconds);
  std::printf("%-10s | %-26s | %-26s | %-17s | %-15s\n", x_label,
              "energy total  opp / greedy", "energy tx+rx  opp / greedy",
              "delay[s] opp/grdy", "delivery opp/grdy");
}

inline void print_point(const SweepPoint& p) {
  const auto& o = p.opportunistic;
  const auto& g = p.greedy;
  const double ratio_total =
      o.energy.mean() > 0 ? g.energy.mean() / o.energy.mean() : 0.0;
  const double ratio_active =
      o.active_energy.mean() > 0
          ? g.active_energy.mean() / o.active_energy.mean()
          : 0.0;
  std::printf(
      "%-10s | %8.5f %8.5f  (%3.0f%%) | %8.5f %8.5f  (%3.0f%%) | "
      "%7.3f %7.3f   | %6.3f %6.3f\n",
      p.label.c_str(), o.energy.mean(), g.energy.mean(), ratio_total * 100.0,
      o.active_energy.mean(), g.active_energy.mean(), ratio_active * 100.0,
      o.delay.mean(), g.delay.mean(), o.delivery.mean(), g.delivery.mean());
  if (detail::csv_file() != nullptr) {
    std::fprintf(detail::csv_file(),
                 "%s,%.6f,%.6f,%.6f,%.6f,%.4f,%.4f,%.4f,%.4f,%.6f,%.6f\n",
                 p.label.c_str(), o.energy.mean(), g.energy.mean(),
                 o.active_energy.mean(), g.active_energy.mean(),
                 o.delay.mean(), g.delay.mean(), o.delivery.mean(),
                 g.delivery.mean(), o.energy.sem(), g.energy.sem());
  }
}

inline void print_expectation(const char* text) {
  std::printf("paper-expected shape: %s\n", text);
}

/// The paper's seven density points: 50..350 nodes in steps of 50.
inline std::vector<std::size_t> density_sweep() {
  return {50, 100, 150, 200, 250, 300, 350};
}

}  // namespace wsn::bench
