// Figure 7: sensitivity to source placement — the 5 sources are scattered
// uniformly over the whole field instead of the 80×80 m corner.
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::open_csv("fig7_random_sources");
  bench::ResultsJson json{"fig7_random_sources"};
  bench::print_figure_header("Figure 7",
                             "random source placement (5 sources anywhere)",
                             fields, secs, "nodes");
  for (std::size_t nodes : bench::density_sweep()) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = nodes;
    cfg.duration = sim::Time::seconds(secs);
    cfg.source_placement = scenario::SourcePlacement::kRandom;
    const auto p = bench::run_point(std::to_string(nodes), cfg, fields);
    bench::print_point(p);
    json.add(p);
  }
  bench::print_expectation(
      "greedy's savings shrink (paper: to ~30%) because scattered sources "
      "offer little early path sharing even on a greedy tree.");
  bench::close_csv();
  json.write(fields, secs);
  return 0;
}
