// Figure 5: greedy vs opportunistic aggregation as a function of network
// density (50..350 nodes, 5 corner sources, 1 corner sink, perfect
// aggregation, no failures).
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::open_csv("fig5_density");
  bench::ResultsJson json{"fig5_density"};
  bench::print_figure_header(
      "Figure 5", "impact of network density (static network)", fields, secs,
      "nodes");
  for (std::size_t nodes : bench::density_sweep()) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = nodes;
    cfg.duration = sim::Time::seconds(secs);
    const auto p = bench::run_point(std::to_string(nodes), cfg, fields);
    bench::print_point(p);
    json.add(p);
  }
  bench::print_expectation(
      "(a) energy rises with density for both; greedy ≈ opportunistic at 50 "
      "nodes, down to ~55% of it at 300-350 (clearest in the tx+rx column); "
      "(b) delay comparable; (c) delivery ≈ 1 for both.");
  bench::close_csv();
  json.write(fields, secs);
  return 0;
}
