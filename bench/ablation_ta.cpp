// Ablation: the aggregation delay T_a (paper §4.2).
//
// T_a trades latency for aggregation opportunity: with T_a → 0 every item
// is forwarded as it arrives (no merging); the paper sets T_a to half the
// event period and T_n = 4·T_a.
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::ResultsJson json{"ablation_ta"};
  std::printf("=== Ablation: aggregation delay T_a (greedy, 250 nodes) ===\n");
  std::printf("fields/point=%d sim=%.0fs (T_n kept at 4*T_a per the paper)\n",
              fields, secs);
  std::printf("%-8s | %-12s | %-12s | %-9s | %-9s\n", "T_a [s]",
              "energy total", "energy tx+rx", "delay [s]", "delivery");
  for (double ta : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 250;
    cfg.duration = sim::Time::seconds(secs);
    cfg.algorithm = core::Algorithm::kGreedy;
    cfg.diffusion.t_a = sim::Time::seconds(ta);
    cfg.diffusion.t_n = sim::Time::seconds(4.0 * ta);
    const auto p = scenario::run_replicates(cfg, fields, 1);
    std::printf("%-8.2f | %12.5f | %12.5f | %9.3f | %9.3f\n", ta,
                p.energy.mean(), p.active_energy.mean(), p.delay.mean(),
                p.delivery.mean());
    char label[32];
    std::snprintf(label, sizeof label, "%.2f", ta);
    json.add(label, "greedy", p);
  }
  std::printf("expected: larger T_a lowers tx+rx energy (bigger aggregates, "
              "fewer transmissions) and raises delay roughly linearly.\n");
  json.write(fields, secs);
  return 0;
}
