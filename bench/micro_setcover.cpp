// Microbenchmarks: weighted set-cover solvers (E8 — §4.2 quality/cost).
#include <benchmark/benchmark.h>

#include "agg/set_cover.hpp"
#include "sim/random.hpp"

namespace {

using wsn::agg::WeightedSet;

std::vector<WeightedSet> random_instance(std::uint32_t universe,
                                         std::size_t sets, double density,
                                         std::uint64_t seed) {
  wsn::sim::Rng rng{seed};
  std::vector<WeightedSet> family(sets);
  for (auto& s : family) {
    for (std::uint32_t e = 0; e < universe; ++e) {
      if (rng.chance(density)) s.elements.push_back(e);
    }
    s.weight = rng.uniform(0.5, 10.0);
  }
  WeightedSet all;
  for (std::uint32_t e = 0; e < universe; ++e) all.elements.push_back(e);
  all.weight = rng.uniform(5.0, 25.0);
  family.push_back(all);
  return family;
}

void BM_GreedyCover(benchmark::State& state) {
  const auto universe = static_cast<std::uint32_t>(state.range(0));
  const auto sets = static_cast<std::size_t>(state.range(1));
  const auto family = random_instance(universe, sets, 0.4, 42);
  for (auto _ : state) {
    auto r = wsn::agg::greedy_weighted_set_cover(family, universe);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyCover)
    ->Args({8, 4})
    ->Args({16, 8})
    ->Args({32, 16})
    ->Args({64, 32})
    ->Args({14, 14});  // the paper's max fan-in (14 sources)

void BM_ExactCover(benchmark::State& state) {
  const auto universe = static_cast<std::uint32_t>(state.range(0));
  const auto family = random_instance(universe, 10, 0.4, 42);
  for (auto _ : state) {
    auto r = wsn::agg::exact_weighted_set_cover(family, universe);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExactCover)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_SourceTransform(benchmark::State& state) {
  const auto universe = static_cast<std::uint32_t>(state.range(0));
  const auto family = random_instance(universe, 16, 0.4, 42);
  std::vector<std::vector<std::uint32_t>> sources;
  for (const auto& s : family) {
    std::vector<std::uint32_t> src;
    for (auto e : s.elements) src.push_back(e % 5);
    sources.push_back(std::move(src));
  }
  for (auto _ : state) {
    auto t = wsn::agg::transform_to_sources(family, sources);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_SourceTransform)->Arg(16)->Arg(64);

// Quality report: greedy weight / exact weight over random instances,
// printed as a counter so the ln(d)+1 bound can be eyeballed.
void BM_GreedyQuality(benchmark::State& state) {
  double worst = 1.0;
  double sum = 0.0;
  int n = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      const auto family = random_instance(12, 10, 0.35, seed);
      const auto g = wsn::agg::greedy_weighted_set_cover(family, 12);
      const auto e = wsn::agg::exact_weighted_set_cover(family, 12);
      if (e.total_weight > 0) {
        const double ratio = g.total_weight / e.total_weight;
        worst = std::max(worst, ratio);
        sum += ratio;
        ++n;
      }
    }
  }
  state.counters["worst_ratio"] = worst;
  state.counters["mean_ratio"] = n > 0 ? sum / n : 0.0;
}
BENCHMARK(BM_GreedyQuality)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
