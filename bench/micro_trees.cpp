// Microbenchmarks: tree constructions on paper-scale unit-disk graphs.
#include <benchmark/benchmark.h>

#include "net/field.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "trees/aggregation_trees.hpp"
#include "trees/graph.hpp"
#include "trees/models.hpp"

namespace {

using namespace wsn;

struct Setup {
  trees::Graph graph;
  trees::AbstractInstance inst;
};

Setup make_setup(std::size_t nodes, std::size_t sources) {
  sim::Rng rng{7};
  net::FieldSpec spec;
  spec.nodes = nodes;
  const net::Topology topo{net::generate_connected_field(spec, rng),
                           spec.radio_range_m};
  Setup s{trees::graph_from_topology(topo),
          trees::make_corner_instance(topo, sources, {0, 0, 80, 80},
                                      {164, 164, 200, 200}, rng)};
  return s;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto s = make_setup(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees::dijkstra(s.graph, s.inst.sink));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(150)->Arg(350);

void BM_ShortestPathTree(benchmark::State& state) {
  const auto s = make_setup(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trees::shortest_path_tree(s.graph, s.inst.sink, s.inst.sources));
  }
}
BENCHMARK(BM_ShortestPathTree)->Arg(50)->Arg(350);

void BM_GreedyIncrementalTree(benchmark::State& state) {
  const auto s = make_setup(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trees::greedy_incremental_tree(s.graph, s.inst.sink, s.inst.sources));
  }
}
BENCHMARK(BM_GreedyIncrementalTree)->Arg(50)->Arg(350);

void BM_SteinerExact(benchmark::State& state) {
  const auto s = make_setup(100, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trees::steiner_tree_exact(s.graph, s.inst.sink, s.inst.sources));
  }
}
BENCHMARK(BM_SteinerExact)->Arg(3)->Arg(5)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
