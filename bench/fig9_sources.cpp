// Figure 9: sensitivity to the number of sources — {2,5,8,11,14} corner
// sources in the 350-node field, perfect aggregation.
#include "bench_common.hpp"

int main() {
  using namespace wsn;
  const int fields = scenario::fields_from_env();
  const double secs = scenario::sim_seconds_from_env(200.0);

  bench::open_csv("fig9_sources");
  bench::ResultsJson json{"fig9_sources"};
  bench::print_figure_header("Figure 9", "impact of the number of sources "
                             "(350 nodes, perfect aggregation)",
                             fields, secs, "sources");
  for (std::size_t sources : {2u, 5u, 8u, 11u, 14u}) {
    scenario::ExperimentConfig cfg;
    cfg.field.nodes = 350;
    cfg.duration = sim::Time::seconds(secs);
    cfg.num_sources = sources;
    const auto p = bench::run_point(std::to_string(sources), cfg, fields);
    bench::print_point(p);
    json.add(p);
  }
  bench::print_expectation(
      "with many sources packed into the fixed 80×80 m corner the workload "
      "approaches the event-radius regime: paths merge early even without "
      "optimisation, so greedy's edge converges toward the opportunistic "
      "baseline.");
  bench::close_csv();
  json.write(fields, secs);
  return 0;
}
