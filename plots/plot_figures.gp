# Gnuplot script rendering the paper's figure panels from the CSV sidecars.
#
# Produce the CSVs first:
#   mkdir -p results && WSN_CSV=results ./build/bench/fig5_density ...
# then:
#   gnuplot -e "csvdir='results'" plots/plot_figures.gp
# Output: results/<figure>_{energy,active,delay,delivery}.png

if (!exists("csvdir")) csvdir = "results"

set datafile separator ","
set key top left
set grid
set term pngcairo size 800,520

figures = "fig5_density fig6_failures fig7_random_sources fig8_sinks fig9_sources fig10_linear"
xlabels = "nodes nodes nodes sinks sources sources"

do for [i=1:words(figures)] {
  fig = word(figures, i)
  xl = word(xlabels, i)
  csv = sprintf("%s/%s.csv", csvdir, fig)

  set xlabel xl

  set output sprintf("%s/%s_energy.png", csvdir, fig)
  set ylabel "avg dissipated energy [J/node/event]"
  set title sprintf("%s — total energy (incl. 35 mW idle floor)", fig)
  plot csv using 1:2:10 with yerrorlines title "opportunistic", \
       csv using 1:3:11 with yerrorlines title "greedy"

  set output sprintf("%s/%s_active.png", csvdir, fig)
  set ylabel "tx+rx energy [J/node/event]"
  set title sprintf("%s — radio-active energy", fig)
  plot csv using 1:4 with linespoints title "opportunistic", \
       csv using 1:5 with linespoints title "greedy"

  set output sprintf("%s/%s_delay.png", csvdir, fig)
  set ylabel "avg delay [s]"
  set title sprintf("%s — delay", fig)
  plot csv using 1:6 with linespoints title "opportunistic", \
       csv using 1:7 with linespoints title "greedy"

  set output sprintf("%s/%s_delivery.png", csvdir, fig)
  set ylabel "distinct-event delivery ratio"
  set yrange [0:1.05]
  set title sprintf("%s — delivery", fig)
  plot csv using 1:8 with linespoints title "opportunistic", \
       csv using 1:9 with linespoints title "greedy"
  unset yrange
}
